//! Structured coherence-protocol invariants for [`CacheCluster`].
//!
//! Every rule the cluster must uphold between operations lives here, named,
//! so both the property tests and the `ys-check` bounded model checker can
//! report *which* protocol obligation broke and *where*. The rules encode
//! the paper's claims: a single coherent pooled cache (§2.2), and dirty
//! data that survives any N−1 blade failures when written N-way (§6.1).

use crate::cluster::{BladeState, CacheCluster, Residency};
use crate::directory::PageKey;
use std::fmt;

/// The individual protocol obligations audited by [`audit`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Invariant {
    /// A page's owner never appears in its own sharer list, and the owner,
    /// sharer, and replica sets are pairwise disjoint.
    HolderSetsDisjoint,
    /// The directory owner holds a dirty `Modified` copy at the directory's
    /// current version.
    OwnerDirtyCopy,
    /// Every directory sharer holds a clean `Shared` copy at the current
    /// version.
    SharerCleanCopy,
    /// Every directory replica blade holds a pinned replica at the current
    /// version, and replicas never exist without an owner to protect.
    ReplicaIntegrity,
    /// Every resident page is reflected in the directory with the matching
    /// role (dirty ⇒ owner, clean ⇒ sharer, replica ⇒ replica set).
    ResidencyBacklink,
    /// A blade's recency list tracks exactly its resident pages.
    LruAgreement,
    /// No blade holds more pages than its configured capacity.
    Capacity,
    /// A failed blade holds nothing, and the directory never points at a
    /// down blade.
    DownBladeConsistency,
    /// An acknowledged (dirty, replicated-as-requested) write was lost —
    /// the owner and every replica failed before destage — and nobody has
    /// acknowledged the loss. Unlike the other rules this one reports an
    /// *unhandled event*, not corrupted bookkeeping: the cluster records it
    /// so the loss can never degrade into a silent stale read.
    DataLoss,
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Invariant::HolderSetsDisjoint => "holder-sets-disjoint",
            Invariant::OwnerDirtyCopy => "owner-dirty-copy",
            Invariant::SharerCleanCopy => "sharer-clean-copy",
            Invariant::ReplicaIntegrity => "replica-integrity",
            Invariant::ResidencyBacklink => "residency-backlink",
            Invariant::LruAgreement => "lru-agreement",
            Invariant::Capacity => "capacity",
            Invariant::DownBladeConsistency => "down-blade-consistency",
            Invariant::DataLoss => "data-loss",
        };
        f.write_str(name)
    }
}

/// One broken obligation: which rule, where, and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    pub invariant: Invariant,
    /// The page involved, when the rule is per-page.
    pub key: Option<PageKey>,
    /// The blade involved, when the rule points at one.
    pub blade: Option<usize>,
    pub detail: String,
}

impl Violation {
    fn page(invariant: Invariant, key: PageKey, blade: usize, detail: String) -> Violation {
        Violation { invariant, key: Some(key), blade: Some(blade), detail }
    }

    fn blade(invariant: Invariant, blade: usize, detail: String) -> Violation {
        Violation { invariant, key: None, blade: Some(blade), detail }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}]", self.invariant)?;
        if let Some(k) = self.key {
            write!(f, " page {k:?}")?;
        }
        if let Some(b) = self.blade {
            write!(f, " blade {b}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// Audit every invariant and return all violations found (empty = healthy).
pub fn audit(cluster: &CacheCluster) -> Vec<Violation> {
    let mut out = Vec::new();
    audit_directory(cluster, &mut out);
    audit_residency(cluster, &mut out);
    audit_blades(cluster, &mut out);
    audit_losses(cluster, &mut out);
    out
}

/// Unacknowledged data losses: every tombstone is a broken durability
/// promise until something accepts it (see
/// [`CacheCluster::acknowledge_loss`]).
fn audit_losses(cluster: &CacheCluster, out: &mut Vec<Violation>) {
    for (key, version) in cluster.lost_pages() {
        out.push(Violation {
            invariant: Invariant::DataLoss,
            key: Some(key),
            blade: None,
            detail: format!("dirty v{version} lost with its owner and every replica; loss unacknowledged"),
        });
    }
}

/// Directory-side rules: each entry's holder sets against blade contents.
fn audit_directory(cluster: &CacheCluster, out: &mut Vec<Violation>) {
    for (key, e) in cluster.directory.iter() {
        let key = *key;
        if let Some(o) = e.owner {
            if e.sharers.contains(&o) {
                out.push(Violation::page(
                    Invariant::HolderSetsDisjoint,
                    key,
                    o,
                    "owner also listed as sharer".into(),
                ));
            }
            if e.replicas.contains(&o) {
                out.push(Violation::page(
                    Invariant::HolderSetsDisjoint,
                    key,
                    o,
                    "owner also listed as replica".into(),
                ));
            }
        }
        for &s in &e.sharers {
            if e.replicas.contains(&s) {
                out.push(Violation::page(
                    Invariant::HolderSetsDisjoint,
                    key,
                    s,
                    "sharer also listed as replica".into(),
                ));
            }
        }

        if let Some(o) = e.owner {
            match cluster.blades.get(o).and_then(|b| b.pages.get(&key)) {
                Some(m) if matches!(m.residency, Residency::Cached { dirty: true, .. }) => {
                    if m.version != e.version {
                        out.push(Violation::page(
                            Invariant::OwnerDirtyCopy,
                            key,
                            o,
                            format!("owner copy at v{} but directory at v{}", m.version, e.version),
                        ));
                    }
                }
                Some(_) => out.push(Violation::page(
                    Invariant::OwnerDirtyCopy,
                    key,
                    o,
                    "owner's resident copy is not dirty".into(),
                )),
                None => out.push(Violation::page(
                    Invariant::OwnerDirtyCopy,
                    key,
                    o,
                    "directory owner holds no copy".into(),
                )),
            }
        }

        for &s in &e.sharers {
            match cluster.blades.get(s).and_then(|b| b.pages.get(&key)) {
                Some(m) if matches!(m.residency, Residency::Cached { dirty: false, .. }) => {
                    if m.version != e.version {
                        out.push(Violation::page(
                            Invariant::SharerCleanCopy,
                            key,
                            s,
                            format!("sharer copy at v{} but directory at v{}", m.version, e.version),
                        ));
                    }
                }
                Some(_) => out.push(Violation::page(
                    Invariant::SharerCleanCopy,
                    key,
                    s,
                    "sharer's resident copy is not clean".into(),
                )),
                None => out.push(Violation::page(
                    Invariant::SharerCleanCopy,
                    key,
                    s,
                    "directory sharer holds no copy".into(),
                )),
            }
        }

        if !e.replicas.is_empty() && e.owner.is_none() {
            out.push(Violation {
                invariant: Invariant::ReplicaIntegrity,
                key: Some(key),
                blade: None,
                detail: "pinned replicas exist with no owner to protect".into(),
            });
        }
        for &r in &e.replicas {
            match cluster.blades.get(r).and_then(|b| b.pages.get(&key)) {
                Some(m) if matches!(m.residency, Residency::Replica) => {
                    if m.version != e.version {
                        out.push(Violation::page(
                            Invariant::ReplicaIntegrity,
                            key,
                            r,
                            format!("replica at v{} but directory at v{}", m.version, e.version),
                        ));
                    }
                }
                Some(_) => out.push(Violation::page(
                    Invariant::ReplicaIntegrity,
                    key,
                    r,
                    "replica blade's copy is not a pinned replica".into(),
                )),
                None => out.push(Violation::page(
                    Invariant::ReplicaIntegrity,
                    key,
                    r,
                    "directory replica blade holds no copy".into(),
                )),
            }
        }

        for &b in e.owner.iter().chain(&e.sharers).chain(&e.replicas) {
            if !cluster.blade_up(b) {
                out.push(Violation::page(
                    Invariant::DownBladeConsistency,
                    key,
                    b,
                    "directory references a down blade".into(),
                ));
            }
        }
    }
}

/// Blade-side rules: every resident page maps back to the directory role
/// that justifies its residency.
fn audit_residency(cluster: &CacheCluster, out: &mut Vec<Violation>) {
    for (b, slot) in cluster.blades.iter().enumerate() {
        for (key, meta) in &slot.pages {
            let entry = cluster.directory.get(key);
            let role_ok = match (meta.residency, entry) {
                (Residency::Cached { dirty: true, .. }, Some(e)) => e.owner == Some(b),
                (Residency::Cached { dirty: false, .. }, Some(e)) => e.sharers.contains(&b),
                (Residency::Replica, Some(e)) => e.replicas.contains(&b),
                (_, None) => false,
            };
            if !role_ok {
                out.push(Violation::page(
                    Invariant::ResidencyBacklink,
                    *key,
                    b,
                    format!("resident as {:?} but directory disagrees", meta.residency),
                ));
            }
        }
    }
}

/// Per-blade structural rules: LRU bookkeeping, capacity, down-blade state.
fn audit_blades(cluster: &CacheCluster, out: &mut Vec<Violation>) {
    for (b, slot) in cluster.blades.iter().enumerate() {
        if slot.lru.len() != slot.pages.len() {
            out.push(Violation::blade(
                Invariant::LruAgreement,
                b,
                format!("lru tracks {} keys but {} pages resident", slot.lru.len(), slot.pages.len()),
            ));
        }
        for key in slot.pages.keys() {
            if !slot.lru.contains(key) {
                out.push(Violation::page(
                    Invariant::LruAgreement,
                    *key,
                    b,
                    "resident page missing from recency list".into(),
                ));
            }
        }
        if slot.pages.len() > slot.capacity_pages {
            out.push(Violation::blade(
                Invariant::Capacity,
                b,
                format!("{} pages resident, capacity {}", slot.pages.len(), slot.capacity_pages),
            ));
        }
        if slot.state == BladeState::Down && !slot.pages.is_empty() {
            out.push(Violation::blade(
                Invariant::DownBladeConsistency,
                b,
                format!("down blade still holds {} pages", slot.pages.len()),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lru::Retention;

    fn key(p: u64) -> PageKey {
        PageKey::new(0, p)
    }

    #[test]
    fn healthy_cluster_audits_clean() {
        let mut c = CacheCluster::new(4, 16);
        c.write(0, key(1), 3, Retention::Normal).unwrap();
        c.fill(2, key(9), Retention::High).unwrap();
        c.destage(key(1)).unwrap();
        assert_eq!(audit(&c), vec![]);
    }

    #[test]
    fn corrupted_directory_is_reported_with_names() {
        let mut c = CacheCluster::new(4, 16);
        c.write(0, key(1), 2, Retention::Normal).unwrap();
        // Simulate a protocol bug: directory claims a sharer that holds
        // nothing.
        c.directory.entry(key(1)).sharers.push(3);
        let violations = audit(&c);
        assert!(violations.iter().any(|v| v.invariant == Invariant::SharerCleanCopy
            && v.key == Some(key(1))
            && v.blade == Some(3)));
    }

    #[test]
    fn stale_replica_version_is_reported() {
        let mut c = CacheCluster::new(4, 16);
        let w = c.write(0, key(5), 2, Retention::Normal).unwrap();
        let replica = w.replicas[0];
        c.blades[replica].pages.get_mut(&key(5)).unwrap().version = 0;
        let violations = audit(&c);
        assert!(violations.iter().any(|v| v.invariant == Invariant::ReplicaIntegrity));
    }

    #[test]
    fn violation_display_names_the_invariant() {
        let v = Violation::page(Invariant::OwnerDirtyCopy, key(7), 2, "x".into());
        let text = v.to_string();
        assert!(text.contains("owner-dirty-copy"));
        assert!(text.contains("blade 2"));
    }
}

//! The coherent pooled cache across controller blades (§2.2, §6.1, §6.3).
//!
//! Protocol: MOSI-flavoured directory coherence at page granularity.
//!
//! * A **read** hits locally, hits remotely (copy supplied from any holder's
//!   cache — "each controller would read/write data from/to the cache of
//!   other controllers"), or misses to disk.
//! * A **write** obtains exclusivity (invalidating other holders), bumps the
//!   page's version, and places **N−1 dirty replicas** on peer blades before
//!   the host is acked; the replicas are pinned until destage (§6.1).
//! * A **blade failure** promotes a surviving replica to owner; data is lost
//!   only when a dirty page's owner *and* all its replicas are gone —
//!   exactly the N−1-failures guarantee the paper claims.

use crate::directory::{DirEntry, Directory, PageKey, PageState};
use crate::lru::{LruList, Retention};
use std::collections::BTreeMap;
use ys_simcore::SpanRecorder;

/// Lifecycle state of one controller blade (§2.1's scale-by-adding-blades
/// plus §6.1's repair-after-failure). Blades move
/// `Up → Draining → Down → Rejoining → Up`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum BladeState {
    /// Full participant.
    Up,
    /// Planned shutdown in progress: keeps serving what it holds but
    /// accepts no new data while [`CacheCluster::drain_blade`] evacuates it.
    Draining,
    /// Failed or shut down: holds nothing, serves nothing.
    Down,
    /// Admitted (back) into the cluster and taking new data, but counted
    /// as transitional until the healer converges and promotes it to `Up`.
    Rejoining,
}

impl std::fmt::Display for BladeState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BladeState::Up => "up",
            BladeState::Draining => "draining",
            BladeState::Down => "down",
            BladeState::Rejoining => "rejoining",
        })
    }
}

/// Cluster health derived from surviving replica margins (the degraded-mode
/// governor's input). Ordered by severity: `Healthy < Degraded < Critical <
/// ReadOnly`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Health {
    /// Every protected page is at its fault-tolerance target and every
    /// blade is a full participant.
    Healthy,
    /// Redundancy below target somewhere (heal backlog outstanding) or a
    /// blade is mid-drain/rejoin — one more planned step from healthy.
    Degraded,
    /// Some acknowledged write's replica margin is exhausted: a protected
    /// dirty page has zero surviving replicas, so the next owner failure
    /// loses it.
    Critical,
    /// Fewer than two blades can accept data: no write can be protected at
    /// all, so governed writes are refused rather than silently accepted.
    ReadOnly,
}

impl std::fmt::Display for Health {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Health::Healthy => "healthy",
            Health::Degraded => "degraded",
            Health::Critical => "critical",
            Health::ReadOnly => "read-only",
        })
    }
}

/// Why a page occupies a blade's cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Residency {
    /// Normal coherent copy (Shared or Modified per directory).
    Cached { state: PageState, dirty: bool },
    /// Pinned dirty replica protecting another blade's write.
    Replica,
}

#[derive(Clone, Debug)]
pub(crate) struct PageMeta {
    pub(crate) residency: Residency,
    pub(crate) retention: Retention,
    pub(crate) version: u64,
}

#[derive(Clone, Debug)]
pub(crate) struct BladeSlot {
    pub(crate) capacity_pages: usize,
    pub(crate) lru: LruList<PageKey>,
    /// Ordered so that blade-failure sweeps (and the FailureReport they
    /// build) visit pages in key order, independent of any hasher seed.
    pub(crate) pages: BTreeMap<PageKey, PageMeta>,
    pub(crate) state: BladeState,
}

impl BladeSlot {
    fn occupancy(&self) -> usize {
        self.pages.len()
    }

    /// Can serve the copies it holds (everything but `Down`).
    pub(crate) fn serving(&self) -> bool {
        self.state != BladeState::Down
    }

    /// Eligible to receive new data (fills, write replicas, heal targets).
    fn accepting(&self) -> bool {
        matches!(self.state, BladeState::Up | BladeState::Rejoining)
    }
}

/// Outcome of a read probe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadOutcome {
    /// Requesting blade already holds the page.
    LocalHit,
    /// Another blade supplied the page from its cache.
    RemoteHit { from: usize },
    /// Nobody holds it: caller must fetch from disk, then `fill`.
    Miss,
}

/// Outcome of a write.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Blades whose copies were invalidated.
    pub invalidated: Vec<usize>,
    /// Peer blades now holding pinned dirty replicas.
    pub replicas: Vec<usize>,
    /// New version of the page.
    pub version: u64,
}

/// Result of a blade failure.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FailureReport {
    /// Dirty pages whose ownership moved to a surviving replica.
    pub promoted: Vec<PageKey>,
    /// Dirty pages with no surviving replica: data loss.
    pub lost: Vec<PageKey>,
}

/// Result of a planned blade drain ([`CacheCluster::drain_blade`]).
/// Unlike a failure, a drain never loses an acknowledged write: every
/// dirty page is promoted or moved before the blade goes down.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DrainReport {
    /// Dirty pages whose ownership transferred to an existing replica
    /// (free hand-off; the protection margin shrinks by one until healed).
    pub promoted: Vec<PageKey>,
    /// Dirty pages copied to a fresh owner (no replica existed).
    pub moved: Vec<PageKey>,
    /// Pinned replicas re-placed on another accepting blade.
    pub replicas_moved: Vec<PageKey>,
    /// Pinned replicas dropped for later healing (no eligible peer had
    /// room; the owner still holds the dirty data, so nothing is lost).
    pub replicas_dropped: Vec<PageKey>,
    /// Clean shared copies discarded (disk still holds the data).
    pub clean_dropped: u64,
    /// Whether the blade reached `Down`. `false` means a dirty page had no
    /// eligible peer: the blade stays `Draining` and the caller should free
    /// space (destage) and call [`CacheCluster::drain_blade`] again.
    pub completed: bool,
}

impl DrainReport {
    /// Fold a retried drain pass into an accumulated report.
    pub fn merge(&mut self, other: DrainReport) {
        self.promoted.extend(other.promoted);
        self.moved.extend(other.moved);
        self.replicas_moved.extend(other.replicas_moved);
        self.replicas_dropped.extend(other.replicas_dropped);
        self.clean_dropped += other.clean_dropped;
        self.completed = other.completed;
    }

    /// Dirty pages evacuated (promoted + moved) — the zero-loss workload.
    pub fn evacuated(&self) -> usize {
        self.promoted.len() + self.moved.len()
    }
}

/// Read-only snapshot of one resident page (see
/// [`CacheCluster::resident_pages`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResidentPage {
    pub key: PageKey,
    /// Pinned dirty replica protecting another blade's write.
    pub replica: bool,
    /// Dirty owner copy awaiting destage.
    pub dirty: bool,
    pub retention: Retention,
    pub version: u64,
}

/// Aggregate statistics, with a per-blade breakdown for the `ys-obs`
/// observability layer (§6.3's hot-spot claim needs per-blade numbers).
#[derive(Clone, Debug, Default)]
pub struct CacheStats {
    pub local_hits: u64,
    pub remote_hits: u64,
    pub misses: u64,
    pub invalidations: u64,
    pub evictions: u64,
    pub destages: u64,
    pub replica_placements: u64,
    /// Replicas re-established by the healer ([`CacheCluster::add_replica`]).
    pub heal_placements: u64,
    /// Indexed by blade id; sized by [`CacheCluster::new`].
    pub per_blade: Vec<BladeCacheStats>,
}

/// One blade's share of the cache activity. Hits and misses are attributed
/// to the *requesting* blade; invalidations, evictions, and replica
/// placements to the blade whose slot changed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BladeCacheStats {
    pub local_hits: u64,
    pub remote_hits: u64,
    pub misses: u64,
    pub invalidations: u64,
    pub evictions: u64,
    pub replicas_hosted: u64,
}

/// Errors surfaced to the orchestrator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheError {
    BladeDown(usize),
    /// Every resident page is dirty/pinned: the write must wait for destage.
    EvictionStall(usize),
    /// Page isn't in the expected state for the operation.
    BadState,
    /// The page's dirty owner and every replica failed before destage: the
    /// acknowledged version is gone and disk holds stale data. Reads refuse
    /// to serve until the loss is acknowledged or the page rewritten —
    /// surfacing the loss explicitly instead of a silent stale miss.
    DataLost(PageKey),
    /// The degraded-mode governor refused the write: fewer than two blades
    /// accept data, so no write can be replica-protected at all.
    ReadOnly,
    /// No accepting peer blade could take the copy (drain evacuation or
    /// heal placement): every candidate is down, draining, or saturated
    /// with dirty data. Transient — destage frees space.
    NoEligiblePeer,
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::BladeDown(b) => write!(f, "blade {b} is down"),
            CacheError::EvictionStall(b) => write!(f, "blade {b} cache saturated with dirty data"),
            CacheError::BadState => write!(f, "page in unexpected coherence state"),
            CacheError::DataLost(k) => write!(f, "page {k:?}: acknowledged write lost (owner and all replicas failed)"),
            CacheError::ReadOnly => write!(f, "cluster is read-only: surviving replica margin exhausted"),
            CacheError::NoEligiblePeer => write!(f, "no accepting peer blade can hold the copy"),
        }
    }
}

impl std::error::Error for CacheError {}

/// The pooled, coherent blade-cache cluster.
///
/// ```
/// use ys_cache::{CacheCluster, PageKey, ReadOutcome, Retention};
///
/// let mut pool = CacheCluster::new(4, 1024);
/// let page = PageKey::new(0, 42);
/// // A 3-way protected write: the data survives any 2 blade failures.
/// let w = pool.write(0, page, 3, Retention::Normal).unwrap();
/// assert_eq!(w.replicas.len(), 2);
/// // Any blade can read it — blade 3 is supplied from a peer's cache.
/// assert!(matches!(pool.read(3, page).unwrap(), ReadOutcome::LocalHit | ReadOutcome::RemoteHit { .. }));
/// let report = pool.fail_blade(0);
/// assert!(report.lost.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct CacheCluster {
    pub(crate) blades: Vec<BladeSlot>,
    pub(crate) directory: Directory,
    /// Tombstones for dirty pages whose owner and every replica failed:
    /// page key → the version that was lost. Persist until the loss is
    /// acknowledged or the page is rewritten, so a total loss can never
    /// degrade into a silent miss that refetches stale disk data.
    pub(crate) lost: std::collections::BTreeMap<PageKey, u64>,
    stats: CacheStats,
    trace: SpanRecorder,
}

impl CacheCluster {
    pub fn new(blade_count: usize, capacity_pages_per_blade: usize) -> CacheCluster {
        assert!(blade_count > 0);
        CacheCluster {
            blades: (0..blade_count)
                .map(|_| BladeSlot {
                    capacity_pages: capacity_pages_per_blade,
                    lru: LruList::new(),
                    pages: BTreeMap::new(),
                    state: BladeState::Up,
                })
                .collect(),
            directory: Directory::new(blade_count),
            lost: std::collections::BTreeMap::new(),
            stats: CacheStats {
                per_blade: vec![BladeCacheStats::default(); blade_count],
                ..CacheStats::default()
            },
            trace: SpanRecorder::disabled(),
        }
    }

    pub fn blade_count(&self) -> usize {
        self.blades.len()
    }

    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Structured trace of directory transitions (disabled by default).
    /// Orchestrators that own the simulated clock call
    /// `trace_mut().set_now(..)` before driving cache operations.
    pub fn trace(&self) -> &SpanRecorder {
        &self.trace
    }

    pub fn trace_mut(&mut self) -> &mut SpanRecorder {
        &mut self.trace
    }

    /// True while the blade can serve the copies it holds (anything but
    /// `Down`; a draining blade still serves until evacuation completes).
    pub fn blade_up(&self, b: usize) -> bool {
        self.blades.get(b).map(|s| s.serving()).unwrap_or(false)
    }

    /// Lifecycle state of blade `b` (out-of-range reads as `Down`).
    pub fn blade_state(&self, b: usize) -> BladeState {
        self.blades.get(b).map(|s| s.state).unwrap_or(BladeState::Down)
    }

    pub fn occupancy(&self, b: usize) -> usize {
        self.blades[b].occupancy()
    }

    /// Pooled capacity across up blades, in pages (§2.2: "adding additional
    /// controller blades would increase the cache available to all").
    pub fn pooled_capacity(&self) -> usize {
        self.blades.iter().filter(|b| b.serving()).map(|b| b.capacity_pages).sum()
    }

    pub fn directory(&self) -> &Directory {
        &self.directory
    }

    fn ensure_up(&self, b: usize) -> Result<(), CacheError> {
        if self.blade_up(b) {
            Ok(())
        } else {
            Err(CacheError::BladeDown(b))
        }
    }

    /// Make room for one page on `blade`. Dirty and replica pages are
    /// veto'd — they must survive until destage.
    fn make_room(&mut self, blade: usize) -> Result<Vec<PageKey>, CacheError> {
        let mut evicted = Vec::new();
        loop {
            let slot = &mut self.blades[blade];
            if slot.occupancy() < slot.capacity_pages {
                break;
            }
            let victim = {
                let pages = &slot.pages;
                slot.lru.evict_where(|k| match pages.get(k) {
                    Some(m) => !matches!(m.residency, Residency::Cached { dirty: false, .. }),
                    None => true,
                })
            };
            match victim {
                Some(key) => {
                    self.blades[blade].pages.remove(&key);
                    self.detach_holder(key, blade);
                    self.stats.evictions += 1;
                    self.stats.per_blade[blade].evictions += 1;
                    self.trace.instant("cache", "evict", blade as u32, key.page, key.volume as u64);
                    evicted.push(key);
                }
                None => return Err(CacheError::EvictionStall(blade)),
            }
        }
        Ok(evicted)
    }

    /// Remove `blade` from a page's directory holder sets; drop the entry
    /// when nobody holds the page anymore.
    fn detach_holder(&mut self, key: PageKey, blade: usize) {
        let e = self.directory.entry(key);
        e.sharers.retain(|&s| s != blade);
        if e.owner == Some(blade) {
            e.owner = None;
        }
        if !e.is_cached_anywhere() && e.replicas.is_empty() {
            self.directory.remove(&key);
        }
    }

    /// Probe for a read at `blade`. Does not fill on miss — the caller
    /// fetches from disk and then calls [`CacheCluster::fill`], so the
    /// simulator can charge the disk time in between.
    pub fn read(&mut self, blade: usize, key: PageKey) -> Result<ReadOutcome, CacheError> {
        self.ensure_up(blade)?;
        if self.lost.contains_key(&key) {
            return Err(CacheError::DataLost(key));
        }
        if let Some(meta) = self.blades[blade].pages.get(&key) {
            match meta.residency {
                Residency::Cached { .. } => {
                    self.blades[blade].lru.touch(&key);
                    self.stats.local_hits += 1;
                    self.stats.per_blade[blade].local_hits += 1;
                    return Ok(ReadOutcome::LocalHit);
                }
                // A pinned dirty replica carries the current version of the
                // data: serve it locally without disturbing its pin.
                Residency::Replica => {
                    self.stats.local_hits += 1;
                    self.stats.per_blade[blade].local_hits += 1;
                    return Ok(ReadOutcome::LocalHit);
                }
            }
        }
        // Find a remote holder.
        let holder = {
            let up: Vec<bool> = self.blades.iter().map(|b| b.serving()).collect();
            match self.directory.get(&key) {
                Some(e) => e.holders().into_iter().find(|&h| up[h] && h != blade),
                None => None,
            }
        };
        match holder {
            Some(from) => {
                self.install_shared(blade, key, Retention::Normal)?;
                self.stats.remote_hits += 1;
                self.stats.per_blade[blade].remote_hits += 1;
                self.trace.instant("cache", "remote_hit", blade as u32, key.page, from as u64);
                Ok(ReadOutcome::RemoteHit { from })
            }
            None => {
                self.stats.misses += 1;
                self.stats.per_blade[blade].misses += 1;
                self.trace.instant("cache", "miss", blade as u32, key.page, key.volume as u64);
                Ok(ReadOutcome::Miss)
            }
        }
    }

    /// Install a clean Shared copy at `blade` (after a disk fetch or a
    /// remote supply).
    pub fn fill(&mut self, blade: usize, key: PageKey, retention: Retention) -> Result<Vec<PageKey>, CacheError> {
        self.ensure_up(blade)?;
        if self.lost.contains_key(&key) {
            // A disk fetch can only supply the stale pre-loss version.
            return Err(CacheError::DataLost(key));
        }
        self.install_shared(blade, key, retention)
    }

    fn install_shared(&mut self, blade: usize, key: PageKey, retention: Retention) -> Result<Vec<PageKey>, CacheError> {
        if let Some(meta) = self.blades[blade].pages.get(&key) {
            match meta.residency {
                Residency::Cached { .. } => {
                    self.blades[blade].lru.touch(&key);
                    return Ok(vec![]);
                }
                // Never displace a pinned replica: it already holds the data
                // and is protecting an un-destaged write.
                Residency::Replica => return Ok(vec![]),
            }
        }
        let evicted = self.make_room(blade)?;
        let version = self.directory.entry(key).version;
        self.blades[blade].pages.insert(
            key,
            PageMeta { residency: Residency::Cached { state: PageState::Shared, dirty: false }, retention, version },
        );
        self.blades[blade].lru.insert(key, retention);
        let e = self.directory.entry(key);
        if e.owner != Some(blade) && !e.sharers.contains(&blade) {
            e.sharers.push(blade);
        }
        Ok(evicted)
    }

    /// Perform a write at `blade` with `n_way` total dirty copies
    /// (1 = no replication; 2 = classic dual-controller; N = paper §6.1).
    pub fn write(
        &mut self,
        blade: usize,
        key: PageKey,
        n_way: usize,
        retention: Retention,
    ) -> Result<WriteOutcome, CacheError> {
        assert!(n_way >= 1);
        self.ensure_up(blade)?;
        // A fresh write redefines the page's contents: the lost version no
        // longer matters, so the tombstone clears.
        self.lost.remove(&key);

        // Reserve local space FIRST: if the cache is saturated with dirty
        // data we must fail before mutating any remote state, or the
        // directory would point at copies we already dropped.
        if !self.blades[blade].pages.contains_key(&key) {
            self.make_room(blade)?;
        }

        // Invalidate every other holder.
        let holders: Vec<usize> = match self.directory.get(&key) {
            Some(e) => e.holders().into_iter().filter(|&h| h != blade).collect(),
            None => vec![],
        };
        for h in &holders {
            self.blades[*h].pages.remove(&key);
            self.blades[*h].lru.remove(&key);
            self.stats.invalidations += 1;
            self.stats.per_blade[*h].invalidations += 1;
            self.trace.instant("cache", "invalidate", *h as u32, key.page, blade as u64);
        }
        // Drop any stale replicas from a previous write generation.
        let old_replicas: Vec<usize> = self.directory.entry(key).replicas.clone();
        for r in old_replicas {
            if r != blade {
                self.blades[r].pages.remove(&key);
                self.blades[r].lru.remove(&key);
            }
        }

        // Install/refresh the exclusive copy locally (space reserved above).
        let version = {
            let e = self.directory.entry(key);
            e.version += 1;
            e.sharers.clear();
            e.owner = Some(blade);
            e.replicas.clear();
            e.protect = n_way;
            e.version
        };
        self.blades[blade].pages.insert(
            key,
            PageMeta { residency: Residency::Cached { state: PageState::Modified, dirty: true }, retention, version },
        );
        self.blades[blade].lru.insert(key, retention);
        self.trace.instant("cache", "modify", blade as u32, key.page, version);

        // Place N−1 pinned replicas on peer blades, chosen deterministically
        // by page hash so replica load spreads.
        let mut replicas = Vec::new();
        if n_way > 1 {
            let candidates: Vec<usize> = {
                let n = self.blades.len();
                let start = key.home(n);
                (0..n)
                    .map(|i| (start + i) % n)
                    .filter(|&b| b != blade && self.blades[b].accepting())
                    .collect()
            };
            for target in candidates.into_iter().take(n_way - 1) {
                if self.blades[target].occupancy() >= self.blades[target].capacity_pages
                    && self.make_room(target).is_err()
                {
                    // Peer saturated with dirty data; skip it rather than stall.
                    continue;
                }
                self.blades[target].pages.insert(
                    key,
                    PageMeta { residency: Residency::Replica, retention, version },
                );
                self.blades[target].lru.insert(key, Retention::Pinned);
                replicas.push(target);
                self.stats.replica_placements += 1;
                self.stats.per_blade[target].replicas_hosted += 1;
                self.trace.instant("cache", "replica_place", target as u32, key.page, version);
            }
        }
        self.directory.entry(key).replicas = replicas.clone();
        Ok(WriteOutcome { invalidated: holders, replicas, version })
    }

    /// Write-back to disk finished: unpin replicas, clean the owner copy.
    pub fn destage(&mut self, key: PageKey) -> Result<(), CacheError> {
        let (owner, replicas) = match self.directory.get(&key) {
            Some(e) => (e.owner, e.replicas.clone()),
            None => return Err(CacheError::BadState),
        };
        let owner = owner.ok_or(CacheError::BadState)?;
        for r in replicas {
            self.blades[r].pages.remove(&key);
            self.blades[r].lru.remove(&key);
        }
        if let Some(meta) = self.blades[owner].pages.get_mut(&key) {
            meta.residency = Residency::Cached { state: PageState::Shared, dirty: false };
            let retention = meta.retention;
            self.blades[owner].lru.insert(key, retention);
        }
        let e = self.directory.entry(key);
        e.replicas.clear();
        e.owner = None;
        e.protect = 0;
        if !e.sharers.contains(&owner) {
            e.sharers.push(owner);
        }
        self.stats.destages += 1;
        self.trace.instant("cache", "destage", owner as u32, key.page, key.volume as u64);
        Ok(())
    }

    /// Drop every copy and replica of `key` cluster-wide (e.g. after a
    /// volume rollback invalidated the data under it).
    pub fn invalidate_page(&mut self, key: PageKey) {
        // Rollback administratively replaces the data under the page; a
        // pending loss tombstone is moot.
        self.lost.remove(&key);
        let holders: Vec<usize> = match self.directory.get(&key) {
            Some(e) => {
                let mut h = e.holders();
                h.extend(&e.replicas);
                h
            }
            None => return,
        };
        for b in holders {
            self.blades[b].pages.remove(&key);
            self.blades[b].lru.remove(&key);
        }
        self.directory.remove(&key);
    }

    /// Pages currently dirty at `blade` (owner copies awaiting destage).
    /// Fraction of the pooled cache holding un-destaged state: dirty
    /// owner pages plus their protection replicas, over the pooled
    /// capacity of up blades. This is the backpressure signal the QoS
    /// admission controller keys off (`ys-qos`): a high dirty ratio
    /// means writes are outrunning destage and new low-priority work
    /// should be delayed or shed. Returns 0 when no capacity is up.
    pub fn dirty_ratio(&self) -> f64 {
        let capacity = self.pooled_capacity();
        if capacity == 0 {
            return 0.0;
        }
        let undestaged: usize = self
            .blades
            .iter()
            .filter(|b| b.serving())
            .map(|b| {
                b.pages
                    .values()
                    .filter(|m| {
                        matches!(
                            m.residency,
                            Residency::Cached { dirty: true, .. } | Residency::Replica
                        )
                    })
                    .count()
            })
            .sum();
        undestaged as f64 / capacity as f64
    }

    pub fn dirty_pages(&self, blade: usize) -> Vec<PageKey> {
        self.blades[blade]
            .pages
            .iter()
            .filter(|(_, m)| matches!(m.residency, Residency::Cached { dirty: true, .. }))
            .map(|(k, _)| *k)
            .collect()
    }

    /// Fail a blade: every copy it held vanishes. Dirty pages survive iff a
    /// replica lives on an up blade (promoted to owner); otherwise lost.
    pub fn fail_blade(&mut self, blade: usize) -> FailureReport {
        let mut report = FailureReport::default();
        if self.blades[blade].state == BladeState::Down {
            return report;
        }
        self.blades[blade].state = BladeState::Down;
        let held: Vec<(PageKey, PageMeta)> =
            std::mem::take(&mut self.blades[blade].pages).into_iter().collect();
        self.blades[blade].lru = LruList::new();

        for (key, meta) in held {
            let e: &mut DirEntry = self.directory.entry(key);
            e.sharers.retain(|&s| s != blade);
            e.replicas.retain(|&r| r != blade);
            match meta.residency {
                Residency::Cached { dirty: true, .. } => {
                    debug_assert_eq!(e.owner, Some(blade));
                    e.owner = None;
                    // Promote the first surviving replica.
                    if let Some(&survivor) = e.replicas.first() {
                        e.owner = Some(survivor);
                        e.replicas.retain(|&r| r != survivor);
                        let version = e.version;
                        let retention = meta.retention;
                        self.blades[survivor].pages.insert(
                            key,
                            PageMeta {
                                residency: Residency::Cached { state: PageState::Modified, dirty: true },
                                retention,
                                version,
                            },
                        );
                        self.blades[survivor].lru.insert(key, retention);
                        self.trace.instant("cache", "promote", survivor as u32, key.page, blade as u64);
                        report.promoted.push(key);
                    } else {
                        self.trace.instant("cache", "lost", blade as u32, key.page, key.volume as u64);
                        report.lost.push(key);
                        let version = e.version;
                        if !e.is_cached_anywhere() {
                            self.directory.remove(&key);
                        }
                        // Tombstone the loss: reads must surface it
                        // explicitly rather than miss to stale disk data.
                        self.lost.insert(key, version);
                    }
                }
                Residency::Cached { dirty: false, .. } | Residency::Replica => {
                    if e.owner == Some(blade) {
                        e.owner = None;
                    }
                    if !e.is_cached_anywhere() && e.replicas.is_empty() {
                        self.directory.remove(&key);
                    }
                }
            }
        }
        report
    }

    /// Bring a failed blade back, empty.
    pub fn repair_blade(&mut self, blade: usize) {
        self.blades[blade].state = BladeState::Up;
    }

    /// Admit a previously failed blade back into the cluster, empty, in
    /// `Rejoining` state: it accepts new data immediately but is only
    /// promoted to `Up` once the healer converges
    /// ([`CacheCluster::finish_rejoin`]).
    pub fn revive_blade(&mut self, blade: usize) -> Result<(), CacheError> {
        match self.blades.get_mut(blade) {
            Some(slot) if slot.state == BladeState::Down => {
                slot.state = BladeState::Rejoining;
                self.trace.instant("cache", "revive", blade as u32, 0, 0);
                Ok(())
            }
            Some(_) => Err(CacheError::BadState),
            None => Err(CacheError::BladeDown(blade)),
        }
    }

    /// Promote a `Rejoining` blade to full `Up` membership (the healer calls
    /// this once no page is below its fault-tolerance target). Returns
    /// whether a transition happened.
    pub fn finish_rejoin(&mut self, blade: usize) -> bool {
        match self.blades.get_mut(blade) {
            Some(slot) if slot.state == BladeState::Rejoining => {
                slot.state = BladeState::Up;
                self.trace.instant("cache", "rejoin_done", blade as u32, 0, 0);
                true
            }
            _ => false,
        }
    }

    /// Grow the cluster by one brand-new blade (§2.1's scale-by-adding-
    /// blades): it joins in `Rejoining` state, folds into directory home
    /// placement, and starts taking fills and replicas immediately.
    /// Returns the new blade's id.
    pub fn add_blade(&mut self, capacity_pages: usize) -> usize {
        self.blades.push(BladeSlot {
            capacity_pages,
            lru: LruList::new(),
            pages: BTreeMap::new(),
            state: BladeState::Rejoining,
        });
        let id = self.directory.add_blade();
        self.stats.per_blade.push(BladeCacheStats::default());
        self.trace.instant("cache", "add_blade", id as u32, 0, 0);
        id
    }

    /// Planned shutdown: evacuate every copy `blade` holds, with zero loss
    /// of acknowledged writes, then take it `Down`.
    ///
    /// Dirty owner pages hand off to an existing replica (promote) or are
    /// copied to a fresh accepting peer (move); pinned replicas are
    /// re-placed where possible and otherwise recorded for the healer;
    /// clean shared copies are simply dropped (disk has the data). If a
    /// dirty page has no eligible peer the blade stays `Draining` and the
    /// returned report has `completed == false` — the caller should free
    /// space (destage) and call again.
    pub fn drain_blade(&mut self, blade: usize) -> Result<DrainReport, CacheError> {
        if self.blades[blade].state == BladeState::Down {
            return Err(CacheError::BladeDown(blade));
        }
        self.blades[blade].state = BladeState::Draining;
        let mut report = DrainReport::default();
        let keys: Vec<PageKey> = self.blades[blade].pages.keys().copied().collect();
        for key in keys {
            let meta = match self.blades[blade].pages.get(&key) {
                Some(m) => m.clone(),
                None => continue,
            };
            match meta.residency {
                Residency::Cached { dirty: true, .. } => {
                    let promote_to =
                        self.directory.get(&key).and_then(|e| e.replicas.first().copied());
                    if let Some(survivor) = promote_to {
                        // Free hand-off: an up-to-date replica becomes owner
                        // (same transition as fail_blade's promote path).
                        let (version, retention) = {
                            let e = self.directory.entry(key);
                            e.owner = Some(survivor);
                            e.replicas.retain(|&r| r != survivor);
                            (e.version, meta.retention)
                        };
                        self.blades[survivor].pages.insert(
                            key,
                            PageMeta {
                                residency: Residency::Cached { state: PageState::Modified, dirty: true },
                                retention,
                                version,
                            },
                        );
                        self.blades[survivor].lru.insert(key, retention);
                        self.trace.instant("cache", "drain_promote", survivor as u32, key.page, blade as u64);
                        report.promoted.push(key);
                    } else {
                        // No replica: the dirty data must be copied out.
                        let n = self.blades.len();
                        let start = key.home(n);
                        let candidates: Vec<usize> = (0..n)
                            .map(|i| (start + i) % n)
                            .filter(|&b| b != blade && self.blades[b].accepting())
                            .collect();
                        let mut new_owner = None;
                        for target in candidates {
                            // An existing clean sharer copy upgrades in place
                            // (a replica is impossible here: replicas imply
                            // the promote path above).
                            if self.blades[target].pages.contains_key(&key) {
                                new_owner = Some(target);
                                break;
                            }
                            if self.blades[target].occupancy() >= self.blades[target].capacity_pages
                                && self.make_room(target).is_err()
                            {
                                continue;
                            }
                            new_owner = Some(target);
                            break;
                        }
                        let target = match new_owner {
                            Some(t) => t,
                            None => {
                                // Nowhere to put an acknowledged write: stay
                                // Draining rather than lose it.
                                report.completed = false;
                                return Ok(report);
                            }
                        };
                        let (version, retention) = {
                            let e = self.directory.entry(key);
                            e.sharers.retain(|&s| s != target);
                            e.owner = Some(target);
                            (e.version, meta.retention)
                        };
                        self.blades[target].pages.insert(
                            key,
                            PageMeta {
                                residency: Residency::Cached { state: PageState::Modified, dirty: true },
                                retention,
                                version,
                            },
                        );
                        self.blades[target].lru.insert(key, retention);
                        self.trace.instant("cache", "drain_move", target as u32, key.page, blade as u64);
                        report.moved.push(key);
                    }
                    self.blades[blade].pages.remove(&key);
                    self.blades[blade].lru.remove(&key);
                }
                Residency::Cached { dirty: false, .. } => {
                    self.blades[blade].pages.remove(&key);
                    self.blades[blade].lru.remove(&key);
                    self.detach_holder(key, blade);
                    report.clean_dropped += 1;
                }
                Residency::Replica => {
                    self.blades[blade].pages.remove(&key);
                    self.blades[blade].lru.remove(&key);
                    self.directory.entry(key).replicas.retain(|&r| r != blade);
                    // Re-place elsewhere when possible; otherwise the owner
                    // still holds the dirty data and the healer catches up.
                    match self.add_replica(key) {
                        Ok(_) => report.replicas_moved.push(key),
                        Err(_) => report.replicas_dropped.push(key),
                    }
                }
            }
        }
        debug_assert!(self.blades[blade].pages.is_empty());
        self.blades[blade].state = BladeState::Down;
        self.blades[blade].lru = LruList::new();
        report.completed = true;
        self.trace.instant("cache", "drain_done", blade as u32, report.evacuated() as u64, report.clean_dropped);
        Ok(report)
    }

    /// Dirty pages below their fault-tolerance target, with the deficit
    /// (missing replica count) — the healer's work queue. Sorted by key.
    pub fn under_target_pages(&self) -> Vec<(PageKey, usize)> {
        self.directory
            .iter()
            .filter(|(_, e)| e.owner.is_some() && e.protect > 1 + e.replicas.len())
            .map(|(k, e)| (*k, e.protect - 1 - e.replicas.len()))
            .collect()
    }

    /// Re-establish one pinned dirty replica for `key` on an accepting peer
    /// (the healer's unit of work). Returns the blade that took the copy.
    pub fn add_replica(&mut self, key: PageKey) -> Result<usize, CacheError> {
        let owner = match self.directory.get(&key) {
            Some(e) => match e.owner {
                Some(o) => o,
                None => return Err(CacheError::BadState),
            },
            None => return Err(CacheError::BadState),
        };
        let version = match self.directory.get(&key) {
            Some(e) => e.version,
            None => return Err(CacheError::BadState),
        };
        let retention = self.blades[owner]
            .pages
            .get(&key)
            .map(|m| m.retention)
            .unwrap_or(Retention::Normal);
        let n = self.blades.len();
        let start = key.home(n);
        let candidates: Vec<usize> = (0..n)
            .map(|i| (start + i) % n)
            .filter(|&b| {
                b != owner && self.blades[b].accepting() && !self.blades[b].pages.contains_key(&key)
            })
            .collect();
        for target in candidates {
            if self.blades[target].occupancy() >= self.blades[target].capacity_pages
                && self.make_room(target).is_err()
            {
                continue;
            }
            self.blades[target].pages.insert(
                key,
                PageMeta { residency: Residency::Replica, retention, version },
            );
            self.blades[target].lru.insert(key, Retention::Pinned);
            self.directory.entry(key).replicas.push(target);
            self.stats.replica_placements += 1;
            self.stats.heal_placements += 1;
            self.stats.per_blade[target].replicas_hosted += 1;
            self.trace.instant("cache", "replica_heal", target as u32, key.page, version);
            return Ok(target);
        }
        Err(CacheError::NoEligiblePeer)
    }

    /// Cluster health from surviving replica margins — the degraded-mode
    /// governor's input (severity-ordered; see [`Health`]).
    pub fn health(&self) -> Health {
        let accepting = self.blades.iter().filter(|b| b.accepting()).count();
        if accepting < 2 {
            return Health::ReadOnly;
        }
        let mut degraded = self
            .blades
            .iter()
            .any(|b| matches!(b.state, BladeState::Draining | BladeState::Rejoining));
        for (_, e) in self.directory.iter() {
            if e.owner.is_some() && e.protect > 1 + e.replicas.len() {
                if e.replicas.is_empty() && e.protect >= 2 {
                    // An acked protected write with zero surviving replicas:
                    // the next owner failure loses it.
                    return Health::Critical;
                }
                degraded = true;
            }
        }
        if degraded {
            Health::Degraded
        } else {
            Health::Healthy
        }
    }

    /// Write under the degraded-mode governor: refused with an explicit
    /// error (and audit trace event) when the cluster is [`Health::ReadOnly`]
    /// — better to fail the write than to accept data one more failure
    /// would silently lose.
    pub fn governed_write(
        &mut self,
        blade: usize,
        key: PageKey,
        n_way: usize,
        retention: Retention,
    ) -> Result<WriteOutcome, CacheError> {
        if self.health() == Health::ReadOnly {
            self.trace.instant("cache", "write_refused", blade as u32, key.page, key.volume as u64);
            return Err(CacheError::ReadOnly);
        }
        self.write(blade, key, n_way, retention)
    }

    /// Outstanding data-loss tombstones: `(page, lost version)` sorted by
    /// key. Non-empty means an acknowledged write is gone and nothing has
    /// accepted responsibility for it yet.
    pub fn lost_pages(&self) -> Vec<(PageKey, u64)> {
        self.lost.iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// True when `key` carries an unacknowledged loss tombstone.
    pub fn is_lost(&self, key: PageKey) -> bool {
        self.lost.contains_key(&key)
    }

    /// Explicitly accept a data loss (operator restored from backup,
    /// application re-created the data, or the loss was recorded upstream).
    /// Clears the tombstone so the page becomes cacheable again; returns
    /// the lost version if one was outstanding.
    pub fn acknowledge_loss(&mut self, key: PageKey) -> Option<u64> {
        self.lost.remove(&key)
    }

    /// Configured page capacity of one blade.
    pub fn capacity_pages(&self, blade: usize) -> usize {
        self.blades[blade].capacity_pages
    }

    /// Read-only view of every page resident at `blade`, sorted by key.
    /// External auditors (the `ys-check` model checker) canonicalize cluster
    /// state from this.
    pub fn resident_pages(&self, blade: usize) -> Vec<ResidentPage> {
        self.resident_pages_iter(blade).collect()
    }

    /// Allocation-free variant of [`CacheCluster::resident_pages`]: the
    /// blade page table is ordered, so residency can stream out in key
    /// order without materializing a `Vec`. The model checker canonicalizes
    /// state once per explored transition through this.
    pub fn resident_pages_iter(&self, blade: usize) -> impl Iterator<Item = ResidentPage> + '_ {
        self.blades[blade].pages.iter().map(|(key, m)| ResidentPage {
            key: *key,
            replica: matches!(m.residency, Residency::Replica),
            dirty: matches!(m.residency, Residency::Cached { dirty: true, .. }),
            retention: m.retention,
            version: m.version,
        })
    }

    /// Recency order (most- to least-recent) of one retention band at
    /// `blade` — the part of blade state that decides future evictions.
    pub fn lru_order(&self, blade: usize, band: Retention) -> Vec<PageKey> {
        self.blades[blade].lru.band_keys(band)
    }

    /// Allocation-free variant of [`CacheCluster::lru_order`].
    pub fn lru_order_iter(&self, blade: usize, band: Retention) -> impl Iterator<Item = &PageKey> + '_ {
        self.blades[blade].lru.band_iter(band)
    }

    /// Audit every coherence invariant, returning all violations. See
    /// [`crate::invariants`] for the rule catalogue.
    pub fn audit_invariants(&self) -> Vec<crate::invariants::Violation> {
        crate::invariants::audit(self)
    }

    /// Verify the coherence invariants; returns a description of the first
    /// violation. Convenience wrapper over [`CacheCluster::audit_invariants`]
    /// kept for call sites that only need pass/fail.
    pub fn check_invariants(&self) -> Result<(), String> {
        match self.audit_invariants().first() {
            None => Ok(()),
            Some(v) => Err(v.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(p: u64) -> PageKey {
        PageKey::new(0, p)
    }

    #[test]
    fn miss_then_fill_then_local_hit() {
        let mut c = CacheCluster::new(4, 16);
        assert_eq!(c.read(0, key(1)).unwrap(), ReadOutcome::Miss);
        c.fill(0, key(1), Retention::Normal).unwrap();
        assert_eq!(c.read(0, key(1)).unwrap(), ReadOutcome::LocalHit);
        c.check_invariants().unwrap();
    }

    #[test]
    fn remote_hit_supplies_from_peer_cache() {
        let mut c = CacheCluster::new(4, 16);
        c.fill(2, key(9), Retention::Normal).unwrap();
        match c.read(0, key(9)).unwrap() {
            ReadOutcome::RemoteHit { from } => assert_eq!(from, 2),
            other => panic!("expected remote hit, got {other:?}"),
        }
        // Now both hold it; a third blade can be supplied by either.
        assert!(matches!(c.read(3, key(9)).unwrap(), ReadOutcome::RemoteHit { .. }));
        c.check_invariants().unwrap();
    }

    #[test]
    fn write_invalidates_sharers() {
        let mut c = CacheCluster::new(4, 16);
        c.fill(1, key(5), Retention::Normal).unwrap();
        c.fill(2, key(5), Retention::Normal).unwrap();
        let out = c.write(0, key(5), 1, Retention::Normal).unwrap();
        let mut inv = out.invalidated.clone();
        inv.sort_unstable();
        assert_eq!(inv, vec![1, 2]);
        assert_eq!(c.read(1, key(5)).unwrap(), ReadOutcome::RemoteHit { from: 0 });
        c.check_invariants().unwrap();
    }

    #[test]
    fn n_way_write_places_replicas() {
        let mut c = CacheCluster::new(6, 16);
        let out = c.write(0, key(3), 3, Retention::Normal).unwrap();
        assert_eq!(out.replicas.len(), 2);
        assert!(!out.replicas.contains(&0));
        assert_eq!(c.stats().replica_placements, 2);
        c.check_invariants().unwrap();
    }

    #[test]
    fn dirty_ratio_tracks_undestaged_state() {
        let mut c = CacheCluster::new(4, 16);
        assert_eq!(c.dirty_ratio(), 0.0);
        // Clean fills don't count.
        c.fill(0, key(1), Retention::Normal).unwrap();
        assert_eq!(c.dirty_ratio(), 0.0);
        // A 2-way write pins one dirty owner + one replica: 2 / 64 pages.
        c.write(0, key(2), 2, Retention::Normal).unwrap();
        assert!((c.dirty_ratio() - 2.0 / 64.0).abs() < 1e-12, "{}", c.dirty_ratio());
        // Destage cleans both.
        c.destage(key(2)).unwrap();
        assert_eq!(c.dirty_ratio(), 0.0);
        c.check_invariants().unwrap();
    }

    #[test]
    fn destage_unpins_replicas_and_cleans_owner() {
        let mut c = CacheCluster::new(4, 16);
        let out = c.write(0, key(3), 3, Retention::Normal).unwrap();
        for &r in &out.replicas {
            assert_eq!(c.occupancy(r), 1);
        }
        c.destage(key(3)).unwrap();
        for &r in &out.replicas {
            assert_eq!(c.occupancy(r), 0, "replica freed after destage");
        }
        assert!(c.dirty_pages(0).is_empty());
        assert_eq!(c.read(0, key(3)).unwrap(), ReadOutcome::LocalHit);
        c.check_invariants().unwrap();
    }

    #[test]
    fn blade_failure_with_replicas_preserves_dirty_data() {
        let mut c = CacheCluster::new(4, 16);
        c.write(0, key(7), 2, Retention::Normal).unwrap();
        let report = c.fail_blade(0);
        assert_eq!(report.promoted, vec![key(7)]);
        assert!(report.lost.is_empty());
        // The promoted copy is readable from the survivor.
        assert!(matches!(c.read(1, key(7)), Ok(ReadOutcome::LocalHit) | Ok(ReadOutcome::RemoteHit { .. })));
        c.check_invariants().unwrap();
    }

    #[test]
    fn blade_failure_without_replicas_loses_dirty_data() {
        let mut c = CacheCluster::new(4, 16);
        let w = c.write(0, key(7), 1, Retention::Normal).unwrap();
        let report = c.fail_blade(0);
        assert_eq!(report.lost, vec![key(7)]);
        assert!(report.promoted.is_empty());
        // The loss is explicit, not a silent miss serving stale disk data.
        assert_eq!(c.read(1, key(7)), Err(CacheError::DataLost(key(7))));
        assert_eq!(c.fill(1, key(7), Retention::Normal), Err(CacheError::DataLost(key(7))));
        let violations = c.audit_invariants();
        assert!(
            violations.iter().any(|v| v.invariant == crate::invariants::Invariant::DataLoss
                && v.key == Some(key(7))),
            "loss must surface in the invariant audit: {violations:?}"
        );
        // Acknowledging the loss restores normal (miss-to-disk) service.
        assert_eq!(c.acknowledge_loss(key(7)), Some(w.version));
        assert_eq!(c.read(1, key(7)).unwrap(), ReadOutcome::Miss);
        c.check_invariants().unwrap();
    }

    #[test]
    fn rewrite_clears_a_loss_tombstone() {
        let mut c = CacheCluster::new(4, 16);
        c.write(0, key(3), 1, Retention::Normal).unwrap();
        c.fail_blade(0);
        assert!(c.is_lost(key(3)));
        // The application redefines the page: the old version is moot.
        c.write(1, key(3), 2, Retention::Normal).unwrap();
        assert!(!c.is_lost(key(3)));
        assert_eq!(c.read(1, key(3)).unwrap(), ReadOutcome::LocalHit);
        c.check_invariants().unwrap();
    }

    #[test]
    fn n_way_survives_n_minus_1_failures() {
        let mut c = CacheCluster::new(5, 16);
        let out = c.write(0, key(11), 3, Retention::Normal).unwrap();
        // Kill owner, then the first promoted replica: 2 failures, N=3.
        let r1 = c.fail_blade(0);
        assert_eq!(r1.promoted.len(), 1);
        let owner1 = out.replicas[0];
        let r2 = c.fail_blade(owner1);
        assert_eq!(r2.promoted.len(), 1, "second replica takes over");
        assert!(r2.lost.is_empty());
        // A third failure exceeds N−1 and loses the page — which the audit
        // must report until the loss is acknowledged.
        let owner2 = out.replicas[1];
        let r3 = c.fail_blade(owner2);
        assert_eq!(r3.lost.len(), 1);
        assert!(c
            .audit_invariants()
            .iter()
            .any(|v| v.invariant == crate::invariants::Invariant::DataLoss));
        c.acknowledge_loss(key(11));
        c.check_invariants().unwrap();
    }

    #[test]
    fn eviction_prefers_clean_pages_and_stalls_when_all_dirty() {
        let mut c = CacheCluster::new(2, 2);
        c.write(0, key(1), 1, Retention::Normal).unwrap();
        c.write(0, key(2), 1, Retention::Normal).unwrap();
        // Cache full of dirty pages: a third write stalls.
        assert_eq!(c.write(0, key(3), 1, Retention::Normal), Err(CacheError::EvictionStall(0)));
        // Destage one; the write now succeeds by evicting the clean page.
        c.destage(key(1)).unwrap();
        c.write(0, key(3), 1, Retention::Normal).unwrap();
        c.check_invariants().unwrap();
    }

    #[test]
    fn pooled_capacity_grows_with_blades() {
        let small = CacheCluster::new(2, 100);
        let big = CacheCluster::new(8, 100);
        assert_eq!(small.pooled_capacity(), 200);
        assert_eq!(big.pooled_capacity(), 800);
    }

    #[test]
    fn reads_to_down_blade_fail() {
        let mut c = CacheCluster::new(2, 4);
        c.fail_blade(1);
        assert_eq!(c.read(1, key(1)), Err(CacheError::BladeDown(1)));
        c.repair_blade(1);
        assert!(c.read(1, key(1)).is_ok());
    }

    #[test]
    fn failed_holder_does_not_serve_remote_hits() {
        let mut c = CacheCluster::new(3, 8);
        c.fill(1, key(4), Retention::Normal).unwrap();
        c.fail_blade(1);
        assert_eq!(c.read(0, key(4)).unwrap(), ReadOutcome::Miss, "holder is down; must go to disk");
    }

    #[test]
    fn stats_account_hits_and_misses() {
        let mut c = CacheCluster::new(2, 8);
        c.read(0, key(1)).unwrap(); // miss
        c.fill(0, key(1), Retention::Normal).unwrap();
        c.read(0, key(1)).unwrap(); // local
        c.read(1, key(1)).unwrap(); // remote
        let s = c.stats();
        assert_eq!((s.misses, s.local_hits, s.remote_hits), (1, 1, 1));
    }

    #[test]
    fn drain_evacuates_dirty_pages_with_zero_loss() {
        let mut c = CacheCluster::new(4, 16);
        // One 2-way page (will promote) and one unreplicated page (will move).
        c.write(0, key(7), 2, Retention::Normal).unwrap();
        c.write(0, key(8), 1, Retention::Normal).unwrap();
        c.fill(0, key(9), Retention::Normal).unwrap();
        let report = c.drain_blade(0).unwrap();
        assert!(report.completed);
        assert_eq!(report.promoted, vec![key(7)]);
        assert_eq!(report.moved, vec![key(8)]);
        assert_eq!(report.clean_dropped, 1);
        assert!(c.lost_pages().is_empty(), "drain must never lose an acked write");
        assert_eq!(c.blade_state(0), BladeState::Down);
        assert_eq!(c.occupancy(0), 0);
        // Both dirty pages still readable from their new homes.
        assert!(c.read(1, key(7)).is_ok());
        assert!(c.read(1, key(8)).is_ok());
        c.check_invariants().unwrap();
    }

    #[test]
    fn drain_replaces_hosted_replicas() {
        let mut c = CacheCluster::new(4, 16);
        let w = c.write(0, key(3), 2, Retention::Normal).unwrap();
        let replica_blade = w.replicas[0];
        let report = c.drain_blade(replica_blade).unwrap();
        assert!(report.completed);
        assert_eq!(report.replicas_moved, vec![key(3)]);
        // Protection margin intact: still one replica, on a different blade.
        let e = c.directory().get(&key(3)).unwrap();
        assert_eq!(e.replicas.len(), 1);
        assert_ne!(e.replicas[0], replica_blade);
        c.check_invariants().unwrap();
    }

    #[test]
    fn incomplete_drain_stays_draining_and_retries_after_destage() {
        // 2 blades, tiny caches, peer saturated with dirty data: the dirty
        // page on blade 0 has nowhere to go.
        let mut c = CacheCluster::new(2, 2);
        c.write(1, key(1), 1, Retention::Normal).unwrap();
        c.write(1, key(2), 1, Retention::Normal).unwrap();
        c.write(0, key(3), 1, Retention::Normal).unwrap();
        let report = c.drain_blade(0).unwrap();
        assert!(!report.completed);
        assert_eq!(c.blade_state(0), BladeState::Draining);
        assert!(c.lost_pages().is_empty());
        // Destage frees the peer; the retried drain completes.
        c.destage(key(1)).unwrap();
        let report = c.drain_blade(0).unwrap();
        assert!(report.completed);
        assert_eq!(report.moved, vec![key(3)]);
        assert!(c.lost_pages().is_empty());
        c.check_invariants().unwrap();
    }

    #[test]
    fn revive_and_finish_rejoin_lifecycle() {
        let mut c = CacheCluster::new(3, 8);
        assert_eq!(c.blade_state(1), BladeState::Up);
        assert_eq!(c.revive_blade(1), Err(CacheError::BadState), "can't revive an up blade");
        c.fail_blade(1);
        assert_eq!(c.blade_state(1), BladeState::Down);
        c.revive_blade(1).unwrap();
        assert_eq!(c.blade_state(1), BladeState::Rejoining);
        assert!(c.blade_up(1), "rejoining blades serve");
        assert!(c.finish_rejoin(1));
        assert_eq!(c.blade_state(1), BladeState::Up);
        assert!(!c.finish_rejoin(1), "no-op on an already-up blade");
    }

    #[test]
    fn add_blade_grows_pool_and_takes_heal_replicas() {
        let mut c = CacheCluster::new(2, 8);
        c.write(0, key(5), 2, Retention::Normal).unwrap();
        // Kill the replica holder: page under target, nowhere to heal to.
        c.fail_blade(1);
        assert_eq!(c.under_target_pages(), vec![(key(5), 1)]);
        assert_eq!(c.add_replica(key(5)), Err(CacheError::NoEligiblePeer));
        // A new blade joins and takes the healed replica.
        let b = c.add_blade(8);
        assert_eq!(b, 2);
        assert_eq!(c.blade_count(), 3);
        assert_eq!(c.blade_state(b), BladeState::Rejoining);
        assert_eq!(c.add_replica(key(5)), Ok(b));
        assert!(c.under_target_pages().is_empty());
        assert_eq!(c.stats().heal_placements, 1);
        c.check_invariants().unwrap();
    }

    #[test]
    fn health_transitions_and_heal_restores_margin() {
        let mut c = CacheCluster::new(4, 16);
        assert_eq!(c.health(), Health::Healthy);
        let w = c.write(0, key(2), 3, Retention::Normal).unwrap();
        assert_eq!(c.health(), Health::Healthy);
        // Lose one replica: under target but a margin survives → Degraded.
        c.fail_blade(w.replicas[0]);
        assert_eq!(c.health(), Health::Degraded);
        // Lose the other: zero surviving replicas → Critical.
        c.fail_blade(w.replicas[1]);
        assert_eq!(c.health(), Health::Critical);
        // Heal back to target: one revived blade plus the untouched fourth
        // blade give the healer two placement targets.
        c.revive_blade(w.replicas[0]).unwrap();
        c.add_replica(key(2)).unwrap();
        assert_eq!(c.health(), Health::Degraded, "one deficit left + rejoining blade");
        c.add_replica(key(2)).unwrap();
        assert!(c.under_target_pages().is_empty());
        assert_eq!(c.health(), Health::Degraded, "rejoining blade keeps it degraded");
        c.revive_blade(w.replicas[1]).unwrap();
        c.finish_rejoin(w.replicas[0]);
        c.finish_rejoin(w.replicas[1]);
        assert_eq!(c.health(), Health::Healthy);
        // The restored margin is real: the owner can fail with zero loss.
        let report = c.fail_blade(0);
        assert!(report.lost.is_empty());
        assert_eq!(report.promoted, vec![key(2)]);
        c.check_invariants().unwrap();
    }

    #[test]
    fn governor_refuses_writes_when_read_only() {
        let mut c = CacheCluster::new(3, 8);
        c.fail_blade(1);
        assert_eq!(c.health(), Health::Healthy, "nothing was at risk: no deficit");
        c.fail_blade(2);
        assert_eq!(c.health(), Health::ReadOnly);
        assert_eq!(
            c.governed_write(0, key(1), 2, Retention::Normal),
            Err(CacheError::ReadOnly)
        );
        // The ungoverned path still works (policy decision, not a mechanism
        // limitation) and a revive lifts the refusal.
        c.write(0, key(1), 2, Retention::Normal).unwrap();
        c.revive_blade(1).unwrap();
        assert!(c.governed_write(0, key(2), 2, Retention::Normal).is_ok());
        c.check_invariants().unwrap();
    }

    #[test]
    fn destage_clears_protection_target() {
        let mut c = CacheCluster::new(4, 16);
        c.write(0, key(6), 3, Retention::Normal).unwrap();
        assert_eq!(c.directory().get(&key(6)).unwrap().protect, 3);
        c.destage(key(6)).unwrap();
        assert_eq!(c.directory().get(&key(6)).unwrap().protect, 0);
        // A destaged page is not heal work even after failures.
        c.fail_blade(0);
        assert!(c.under_target_pages().is_empty());
        c.check_invariants().unwrap();
    }

    #[test]
    fn rewrite_same_page_refreshes_replicas() {
        let mut c = CacheCluster::new(4, 16);
        let w1 = c.write(0, key(6), 2, Retention::Normal).unwrap();
        let w2 = c.write(0, key(6), 2, Retention::Normal).unwrap();
        assert_eq!(w2.version, w1.version + 1);
        c.check_invariants().unwrap();
        // Still exactly one replica set.
        let e = c.directory().get(&key(6)).unwrap();
        assert_eq!(e.replicas.len(), 1);
        assert_eq!(e.version, w2.version);
    }
}

//! An O(1) LRU list over a slab, with priority bands.
//!
//! The paper's file system can "override cache retention priorities" per
//! file (§4), so the recency list is split into bands: eviction always
//! drains the lowest band's tail before touching higher bands.

use std::collections::HashMap; // lint: allow(unordered-iteration) — see `index` field
use std::hash::Hash;

/// Cache retention priority (§4 extended metadata). Order matters:
/// `Low` evicts first, `Pinned` never auto-evicts.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Retention {
    Low = 0,
    Normal = 1,
    High = 2,
    Pinned = 3,
}

const BANDS: usize = 4;

#[derive(Clone, Debug)]
struct Node<K> {
    key: K,
    band: usize,
    prev: Option<usize>,
    next: Option<usize>,
}

#[derive(Clone, Copy, Debug, Default)]
struct BandList {
    head: Option<usize>, // most recent
    tail: Option<usize>, // least recent
    len: usize,
}

/// LRU with priority bands. Keys are unique; touching a key moves it to the
/// front of its band.
#[derive(Clone, Debug)]
pub struct LruList<K: Eq + Hash + Clone> {
    slab: Vec<Node<K>>,
    free: Vec<usize>,
    /// Lookup-only: recency order lives in the slab links, and nothing ever
    /// iterates this map, so the hasher seed cannot leak into replay.
    index: HashMap<K, usize>, // lint: allow(unordered-iteration)
    bands: [BandList; BANDS],
}

impl<K: Eq + Hash + Clone> Default for LruList<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone> LruList<K> {
    pub fn new() -> LruList<K> {
        LruList {
            slab: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(), // lint: allow(unordered-iteration) — lookup-only, never iterated
            bands: [BandList::default(); BANDS],
        }
    }

    pub fn len(&self) -> usize {
        self.index.len()
    }

    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    pub fn contains(&self, key: &K) -> bool {
        self.index.contains_key(key)
    }

    fn unlink(&mut self, idx: usize) {
        let (band, prev, next) = {
            let n = &self.slab[idx];
            (n.band, n.prev, n.next)
        };
        match prev {
            Some(p) => self.slab[p].next = next,
            None => self.bands[band].head = next,
        }
        match next {
            Some(nx) => self.slab[nx].prev = prev,
            None => self.bands[band].tail = prev,
        }
        self.bands[band].len -= 1;
    }

    fn link_front(&mut self, idx: usize, band: usize) {
        let old_head = self.bands[band].head;
        {
            let n = &mut self.slab[idx];
            n.band = band;
            n.prev = None;
            n.next = old_head;
        }
        if let Some(h) = old_head {
            self.slab[h].prev = Some(idx);
        }
        self.bands[band].head = Some(idx);
        if self.bands[band].tail.is_none() {
            self.bands[band].tail = Some(idx);
        }
        self.bands[band].len += 1;
    }

    /// Insert (or touch) `key` at the front of `retention`'s band.
    pub fn insert(&mut self, key: K, retention: Retention) {
        let band = retention as usize;
        if let Some(&idx) = self.index.get(&key) {
            self.unlink(idx);
            self.link_front(idx, band);
            return;
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i] = Node { key: key.clone(), band, prev: None, next: None };
                i
            }
            None => {
                self.slab.push(Node { key: key.clone(), band, prev: None, next: None });
                self.slab.len() - 1
            }
        };
        self.index.insert(key, idx);
        self.link_front(idx, band);
    }

    /// Touch an existing key (move to front of its current band).
    pub fn touch(&mut self, key: &K) -> bool {
        match self.index.get(key).copied() {
            Some(idx) => {
                let band = self.slab[idx].band;
                self.unlink(idx);
                self.link_front(idx, band);
                true
            }
            None => false,
        }
    }

    /// Remove a specific key.
    pub fn remove(&mut self, key: &K) -> bool {
        match self.index.remove(key) {
            Some(idx) => {
                self.unlink(idx);
                self.free.push(idx);
                true
            }
            None => false,
        }
    }

    /// Evict the least-recently-used key from the lowest non-empty,
    /// non-pinned band, skipping keys `veto` rejects (e.g. dirty pages).
    pub fn evict_where<F: Fn(&K) -> bool>(&mut self, veto: F) -> Option<K> {
        for band in 0..BANDS - 1 {
            // never auto-evict Pinned
            let mut cursor = self.bands[band].tail;
            while let Some(idx) = cursor {
                if veto(&self.slab[idx].key) {
                    cursor = self.slab[idx].prev;
                    continue;
                }
                let key = self.slab[idx].key.clone();
                self.index.remove(&key);
                self.unlink(idx);
                self.free.push(idx);
                return Some(key);
            }
        }
        None
    }

    /// Iterate keys from most- to least-recent within a band.
    pub fn band_keys(&self, retention: Retention) -> Vec<K> {
        self.band_iter(retention).cloned().collect()
    }

    /// Allocation-free variant of [`LruList::band_keys`]: borrow keys from
    /// most- to least-recent within a band. Hot callers (the model
    /// checker's canonical hash) walk recency order once per explored
    /// transition and must not pay a `Vec` per walk.
    pub fn band_iter(&self, retention: Retention) -> impl Iterator<Item = &K> + '_ {
        std::iter::successors(self.bands[retention as usize].head, move |&idx| {
            self.slab[idx].next
        })
        .map(move |idx| &self.slab[idx].key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_evict_lru_order() {
        let mut l: LruList<u32> = LruList::new();
        l.insert(1, Retention::Normal);
        l.insert(2, Retention::Normal);
        l.insert(3, Retention::Normal);
        assert_eq!(l.evict_where(|_| false), Some(1));
        assert_eq!(l.evict_where(|_| false), Some(2));
        assert_eq!(l.evict_where(|_| false), Some(3));
        assert_eq!(l.evict_where(|_| false), None);
        assert!(l.is_empty());
    }

    #[test]
    fn touch_moves_to_front() {
        let mut l: LruList<u32> = LruList::new();
        l.insert(1, Retention::Normal);
        l.insert(2, Retention::Normal);
        assert!(l.touch(&1));
        assert_eq!(l.evict_where(|_| false), Some(2), "1 was refreshed");
    }

    #[test]
    fn low_band_evicts_before_high() {
        let mut l: LruList<u32> = LruList::new();
        l.insert(10, Retention::High);
        l.insert(20, Retention::Low);
        l.insert(30, Retention::Normal);
        assert_eq!(l.evict_where(|_| false), Some(20));
        assert_eq!(l.evict_where(|_| false), Some(30));
        assert_eq!(l.evict_where(|_| false), Some(10));
    }

    #[test]
    fn pinned_is_never_auto_evicted() {
        let mut l: LruList<u32> = LruList::new();
        l.insert(1, Retention::Pinned);
        assert_eq!(l.evict_where(|_| false), None);
        assert!(l.remove(&1), "explicit removal still works");
    }

    #[test]
    fn veto_skips_but_does_not_block_others() {
        let mut l: LruList<u32> = LruList::new();
        l.insert(1, Retention::Normal);
        l.insert(2, Retention::Normal);
        // veto the LRU entry (1); eviction takes 2's... no wait: veto(1) → take 2.
        assert_eq!(l.evict_where(|&k| k == 1), Some(2));
        assert!(l.contains(&1));
    }

    #[test]
    fn reinsert_updates_band() {
        let mut l: LruList<u32> = LruList::new();
        l.insert(1, Retention::Low);
        l.insert(1, Retention::High);
        assert_eq!(l.len(), 1);
        l.insert(2, Retention::Normal);
        assert_eq!(l.evict_where(|_| false), Some(2), "1 now lives in the High band");
    }

    #[test]
    fn remove_then_slab_reuse() {
        let mut l: LruList<u32> = LruList::new();
        for k in 0..100 {
            l.insert(k, Retention::Normal);
        }
        for k in 0..50 {
            assert!(l.remove(&k));
        }
        for k in 100..150 {
            l.insert(k, Retention::Normal);
        }
        assert_eq!(l.len(), 100);
        // Eviction order: 50..99 then 100..149.
        assert_eq!(l.evict_where(|_| false), Some(50));
    }

    #[test]
    fn band_keys_lists_most_recent_first() {
        let mut l: LruList<u32> = LruList::new();
        l.insert(1, Retention::Normal);
        l.insert(2, Retention::Normal);
        l.insert(3, Retention::Normal);
        assert_eq!(l.band_keys(Retention::Normal), vec![3, 2, 1]);
        assert!(l.band_keys(Retention::High).is_empty());
    }
}

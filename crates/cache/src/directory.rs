//! The coherence directory.
//!
//! Directory-based MSI over cache pages: each page has a *home* blade
//! (hash-sharded so directory load scales with the cluster, §2.2), and the
//! home's directory entry records the set of sharers, the exclusive owner
//! (if modified), the write version, and where dirty replicas live (§6.1).

use std::collections::BTreeMap;

/// Global cache-page key: (volume, page index within volume).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PageKey {
    pub volume: u32,
    pub page: u64,
}

impl PageKey {
    pub fn new(volume: u32, page: u64) -> PageKey {
        PageKey { volume, page }
    }

    /// Home blade for this page's directory entry.
    pub fn home(&self, blades: usize) -> usize {
        // Fibonacci hashing over a mixed key: cheap and well-spread.
        let k = (self.volume as u64).rotate_left(32) ^ self.page;
        let h = k.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize % blades
    }
}

/// Per-page coherence state as seen by one blade.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PageState {
    Shared,
    Modified,
}

/// Directory entry for one page.
#[derive(Clone, Debug, Default)]
pub struct DirEntry {
    /// Blades holding a Shared copy.
    pub sharers: Vec<usize>,
    /// Blade holding the Modified (exclusive, dirty) copy.
    pub owner: Option<usize>,
    /// Blades holding dirty replicas for N-way write protection.
    pub replicas: Vec<usize>,
    /// Monotonic write version; replicas carry the version they protect.
    pub version: u64,
    /// Fault-tolerance target: total dirty copies (owner + replicas) the
    /// last write asked for. Non-zero only while the page is dirty; the
    /// healer re-replicates any page whose surviving copies fall below it
    /// (after a promote, drain, or join). Cleared on destage — a page on
    /// disk no longer needs in-cache protection.
    pub protect: usize,
}

impl DirEntry {
    pub fn is_cached_anywhere(&self) -> bool {
        self.owner.is_some() || !self.sharers.is_empty()
    }

    pub fn holders(&self) -> Vec<usize> {
        let mut h = self.sharers.clone();
        if let Some(o) = self.owner {
            h.push(o);
        }
        h
    }
}

/// The directory: sharded by page home; this struct holds all shards and
/// exposes per-shard accounting so tests can verify load spreading.
#[derive(Clone, Debug)]
pub struct Directory {
    blades: usize,
    /// Ordered: [`Directory::iter`] feeds the ys-chaos recovery oracle and
    /// destage scans, so its order must not depend on a hasher seed.
    entries: BTreeMap<PageKey, DirEntry>,
    shard_lookups: Vec<u64>,
}

impl Directory {
    pub fn new(blades: usize) -> Directory {
        assert!(blades > 0);
        Directory { blades, entries: BTreeMap::new(), shard_lookups: vec![0; blades] }
    }

    pub fn blades(&self) -> usize {
        self.blades
    }

    /// Grow the directory by one home shard (a blade joined the cluster,
    /// §2.1's scale-by-adding-blades). Future `home` hashes spread over the
    /// wider cluster; existing entries stay where they are.
    pub fn add_blade(&mut self) -> usize {
        self.blades += 1;
        self.shard_lookups.push(0);
        self.blades - 1
    }

    pub fn entry(&mut self, key: PageKey) -> &mut DirEntry {
        self.shard_lookups[key.home(self.blades)] += 1;
        self.entries.entry(key).or_default()
    }

    pub fn get(&self, key: &PageKey) -> Option<&DirEntry> {
        self.entries.get(key)
    }

    pub fn remove(&mut self, key: &PageKey) {
        self.entries.remove(key);
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Directory lookups served per home shard — E5's evidence that
    /// directory work itself spreads across the cluster.
    pub fn shard_lookups(&self) -> &[u64] {
        &self.shard_lookups
    }

    /// Iterate entries in page-key order (deterministic across runs).
    pub fn iter(&self) -> impl Iterator<Item = (&PageKey, &DirEntry)> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn home_is_stable_and_in_range() {
        for blades in 1..16 {
            for v in 0..4u32 {
                for p in 0..100u64 {
                    let k = PageKey::new(v, p);
                    let h = k.home(blades);
                    assert!(h < blades);
                    assert_eq!(h, k.home(blades), "home must be deterministic");
                }
            }
        }
    }

    #[test]
    fn homes_spread_across_blades() {
        let blades = 8;
        let mut counts = vec![0u32; blades];
        for p in 0..8000u64 {
            counts[PageKey::new(1, p).home(blades)] += 1;
        }
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        assert!(max < 2 * min, "uneven home distribution: {counts:?}");
    }

    #[test]
    fn entry_creates_and_tracks_shard_load() {
        let mut d = Directory::new(4);
        let k = PageKey::new(0, 7);
        d.entry(k).sharers.push(2);
        assert_eq!(d.len(), 1);
        assert_eq!(d.get(&k).unwrap().sharers, vec![2]);
        assert_eq!(d.shard_lookups().iter().sum::<u64>(), 1);
        d.remove(&k);
        assert!(d.is_empty());
    }

    #[test]
    fn holders_combines_sharers_and_owner() {
        let mut e = DirEntry::default();
        assert!(!e.is_cached_anywhere());
        e.sharers = vec![0, 3];
        e.owner = Some(5);
        let h = e.holders();
        assert!(h.contains(&0) && h.contains(&3) && h.contains(&5));
        assert!(e.is_cached_anywhere());
    }
}

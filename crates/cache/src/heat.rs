//! Access-heat tracking.
//!
//! §7.1: "The system would recognize files that are commonly accessed at
//! multiple locations and automatically replicate copies." The tracker
//! counts accesses per key per accessor with exponential decay, and reports
//! keys hot at more than one accessor.

use std::collections::BTreeMap;
use ys_simcore::time::SimTime;

/// Exponentially-decayed access counter per (key, accessor).
///
/// Keys are `Ord` (not `Hash`): [`HeatTracker::hot_accessors`] iterates the
/// map, and replication triggers fired from it must not depend on a
/// process-random hasher seed.
#[derive(Clone, Debug)]
pub struct HeatTracker<K: Ord + Clone> {
    /// Decay half-life.
    half_life_secs: f64,
    entries: BTreeMap<(K, usize), (f64, SimTime)>,
}

impl<K: Ord + Clone> HeatTracker<K> {
    pub fn new(half_life_secs: f64) -> HeatTracker<K> {
        assert!(half_life_secs > 0.0);
        HeatTracker { half_life_secs, entries: BTreeMap::new() }
    }

    fn decayed(&self, value: f64, since: SimTime, now: SimTime) -> f64 {
        let dt = now.since(since).as_secs_f64();
        value * 0.5f64.powf(dt / self.half_life_secs)
    }

    /// Record one access by `accessor` at `now`.
    pub fn record(&mut self, key: K, accessor: usize, now: SimTime) {
        let half_life = self.half_life_secs;
        let e = self.entries.entry((key, accessor)).or_insert((0.0, now));
        let dt = now.since(e.1).as_secs_f64();
        let current = e.0 * 0.5f64.powf(dt / half_life);
        *e = (current + 1.0, now);
    }

    /// Current heat of `key` at `accessor`.
    pub fn heat(&self, key: &K, accessor: usize, now: SimTime) -> f64 {
        match self.entries.get(&(key.clone(), accessor)) {
            Some(&(v, t)) => self.decayed(v, t, now),
            None => 0.0,
        }
    }

    /// Accessors whose heat for `key` exceeds `threshold`.
    pub fn hot_accessors(&self, key: &K, threshold: f64, now: SimTime) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .entries
            .iter()
            .filter(|((k, _), _)| k == key)
            .filter(|((_, _), &(v, t))| self.decayed(v, t, now) > threshold)
            .map(|((_, a), _)| *a)
            .collect();
        out.sort_unstable();
        out
    }

    /// Is `key` hot (above threshold) at two or more accessors — the
    /// paper's trigger for automatic multi-site replication?
    pub fn is_multi_hot(&self, key: &K, threshold: f64, now: SimTime) -> bool {
        self.hot_accessors(key, threshold, now).len() >= 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ys_simcore::time::SimDuration;

    #[test]
    fn heat_accumulates_per_accessor() {
        let mut h: HeatTracker<u64> = HeatTracker::new(60.0);
        let t = SimTime::ZERO;
        for _ in 0..5 {
            h.record(1, 0, t);
        }
        h.record(1, 1, t);
        assert!((h.heat(&1, 0, t) - 5.0).abs() < 1e-9);
        assert!((h.heat(&1, 1, t) - 1.0).abs() < 1e-9);
        assert_eq!(h.heat(&2, 0, t), 0.0);
    }

    #[test]
    fn heat_decays_with_half_life() {
        let mut h: HeatTracker<u64> = HeatTracker::new(10.0);
        h.record(1, 0, SimTime::ZERO);
        let later = SimTime::ZERO + SimDuration::from_secs(10);
        assert!((h.heat(&1, 0, later) - 0.5).abs() < 1e-9);
        let much_later = SimTime::ZERO + SimDuration::from_secs(100);
        assert!(h.heat(&1, 0, much_later) < 0.01);
    }

    #[test]
    fn multi_hot_requires_two_accessors() {
        let mut h: HeatTracker<u64> = HeatTracker::new(60.0);
        let t = SimTime::ZERO;
        for _ in 0..10 {
            h.record(7, 0, t);
        }
        assert!(!h.is_multi_hot(&7, 3.0, t), "only one site is hot");
        for _ in 0..10 {
            h.record(7, 2, t);
        }
        assert!(h.is_multi_hot(&7, 3.0, t));
        assert_eq!(h.hot_accessors(&7, 3.0, t), vec![0, 2]);
    }

    #[test]
    fn cooling_removes_hotness() {
        let mut h: HeatTracker<u64> = HeatTracker::new(5.0);
        for _ in 0..8 {
            h.record(3, 0, SimTime::ZERO);
            h.record(3, 1, SimTime::ZERO);
        }
        assert!(h.is_multi_hot(&3, 4.0, SimTime::ZERO));
        let later = SimTime::ZERO + SimDuration::from_secs(30);
        assert!(!h.is_multi_hot(&3, 4.0, later));
    }
}

//! `ys-cache` — the coherent, pooled blade cache (§2.2, §6.1, §6.3).
//!
//! "The controller blades would use the cache on all the controller blades
//! as a single, coherent, distributed pool of cache. Because each controller
//! would read/write data from/to the cache of other controllers ... there
//! would be no cache or controller hot spots."
//!
//! * [`lru`] — O(1) slab LRU with the §4 retention-priority bands;
//! * [`directory`] — hash-sharded MSI directory (page homes spread across
//!   blades so directory load scales with the cluster);
//! * [`cluster`] — [`CacheCluster`]: local/remote hits, invalidation on
//!   write, **N-way dirty replication** with replica promotion on blade
//!   failure (§6.1's N−1-failure guarantee), destage, and eviction;
//! * [`heat`] — decayed access-heat tracking feeding §7.1's automatic
//!   hot-file replication.

pub mod cluster;
pub mod directory;
pub mod heat;
pub mod invariants;
pub mod lru;

pub use cluster::{
    BladeCacheStats, BladeState, CacheCluster, CacheError, CacheStats, DrainReport, FailureReport,
    Health, ReadOutcome, ResidentPage, WriteOutcome,
};
pub use directory::{DirEntry, Directory, PageKey, PageState};
pub use heat::HeatTracker;
pub use invariants::{Invariant, Violation};
pub use lru::{LruList, Retention};

//! Property tests: the coherence invariants hold under arbitrary operation
//! sequences, and dirty data survives any N−1 blade failures.

use proptest::prelude::*;
use ys_cache::{CacheCluster, PageKey, ReadOutcome, Retention};

#[derive(Clone, Copy, Debug)]
enum Op {
    Read { blade: u8, page: u8 },
    Write { blade: u8, page: u8, n_way: u8 },
    Destage { page: u8 },
    Fail { blade: u8 },
    Repair { blade: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(blade, page)| Op::Read { blade, page }),
        (any::<u8>(), any::<u8>(), 1u8..4).prop_map(|(blade, page, n_way)| Op::Write { blade, page, n_way }),
        any::<u8>().prop_map(|page| Op::Destage { page }),
        any::<u8>().prop_map(|blade| Op::Fail { blade }),
        any::<u8>().prop_map(|blade| Op::Repair { blade }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariants hold after every operation in any sequence, including
    /// failures and repairs.
    #[test]
    fn invariants_hold_under_arbitrary_ops(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let blades = 5usize;
        let mut c = CacheCluster::new(blades, 8);
        for op in ops {
            match op {
                Op::Read { blade, page } => {
                    let b = blade as usize % blades;
                    let key = PageKey::new(0, (page % 32) as u64);
                    if let Ok(ReadOutcome::Miss) = c.read(b, key) {
                        let _ = c.fill(b, key, Retention::Normal);
                    }
                }
                Op::Write { blade, page, n_way } => {
                    let b = blade as usize % blades;
                    let key = PageKey::new(0, (page % 32) as u64);
                    let _ = c.write(b, key, n_way as usize, Retention::Normal);
                }
                Op::Destage { page } => {
                    let key = PageKey::new(0, (page % 32) as u64);
                    let _ = c.destage(key);
                }
                Op::Fail { blade } => {
                    // Losses are legal for under-replicated writes; the
                    // audit flags them until acknowledged, so acknowledge
                    // here — this property is about protocol bookkeeping,
                    // not the durability budget.
                    for key in c.fail_blade(blade as usize % blades).lost {
                        c.acknowledge_loss(key);
                    }
                }
                Op::Repair { blade } => {
                    c.repair_blade(blade as usize % blades);
                }
            }
            // The structured audit names every broken rule at once; report
            // the full list so a failure pinpoints the invariant by name.
            let violations = c.audit_invariants();
            prop_assert!(
                violations.is_empty(),
                "after {op:?}: {}",
                violations.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("; ")
            );
        }
    }

    /// With N-way replication, killing any N−1 blades never loses a dirty
    /// page; versions survive intact.
    #[test]
    fn n_way_survives_any_n_minus_1_failures(
        n_way in 2usize..5,
        kill_order in proptest::collection::vec(any::<u8>(), 1..4),
        page in any::<u8>(),
    ) {
        let blades = 6usize;
        let mut c = CacheCluster::new(blades, 16);
        let key = PageKey::new(1, page as u64);
        let out = c.write(0, key, n_way, Retention::Normal).unwrap();
        prop_assume!(out.replicas.len() == n_way - 1);

        // Kill up to n_way - 1 distinct blades (any blades at all).
        let mut killed = std::collections::HashSet::new();
        for k in kill_order.iter().take(n_way - 1) {
            let b = *k as usize % blades;
            if killed.insert(b) {
                let report = c.fail_blade(b);
                prop_assert!(report.lost.is_empty(), "lost dirty data after {} failures", killed.len());
            }
        }
        let violations = c.audit_invariants();
        prop_assert!(
            violations.is_empty(),
            "{}",
            violations.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("; ")
        );
    }

    /// Reads return the latest written version: after a write, any reader
    /// observes the directory version of that write (monotonicity).
    #[test]
    fn versions_are_monotonic(writes in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..50)) {
        let blades = 4usize;
        let mut c = CacheCluster::new(blades, 64);
        let mut last_version = std::collections::HashMap::new();
        for (blade, page) in writes {
            let b = blade as usize % blades;
            let key = PageKey::new(0, (page % 16) as u64);
            let out = c.write(b, key, 2, Retention::Normal).unwrap();
            if let Some(prev) = last_version.insert(key, out.version) {
                prop_assert!(out.version > prev, "version regressed");
            }
        }
    }
}

//! Hierarchical weighted-fair queueing.
//!
//! Two levels, mirroring how a shared facility sells capacity: the outer
//! level divides a port's bandwidth among *classes* (premium / standard /
//! scavenger, weights from [`QosClass::base_weight`]), the inner level
//! divides each class's share among its *tenants* (weights from
//! [`TenantSpec::weight`]). Both levels use start-time fair queueing with
//! integer fixed-point virtual-time tags — the same tag algebra as
//! `ys_simnet::sched::FairPort`, fully deterministic.
//!
//! For a single bottleneck link the hierarchy collapses: serving flows by
//! effective weight `class_weight × tenant_weight` yields the same
//! long-run shares, which is what the fast path feeds to
//! `ys_simnet::FairPort` via [`QosConfig::effective_weight`]. The explicit
//! [`HierarchicalWfq`] structure exists for schedules where the class
//! boundary matters transiently (a newly backlogged scavenger tenant must
//! not dilute premium's share while its class is already at cap) and as
//! the reference the collapsed form is tested against.

use std::collections::BTreeMap;

use crate::config::{QosClass, QosConfig, TenantSpec};

const TAG_SCALE: u128 = 1 << 16;

#[derive(Clone, Debug, Default)]
struct Level {
    vtime: u128,
    finish: BTreeMap<u32, u128>,
}

impl Level {
    /// Assign start/finish tags for a message of `cost ÷ weight`.
    fn tag(&mut self, key: u32, bytes: u64, weight: u64) -> u128 {
        let last = self.finish.get(&key).copied().unwrap_or(0);
        let start = self.vtime.max(last);
        let f = start + u128::from(bytes.max(1)) * TAG_SCALE / u128::from(weight.max(1));
        self.finish.insert(key, f);
        f
    }

    fn advance(&mut self, to: u128) {
        self.vtime = self.vtime.max(to);
    }
}

#[derive(Clone, Debug)]
struct Item {
    seq: u64,
    tenant: u32,
    class: QosClass,
    bytes: u64,
    tenant_tag: u128,
}

/// Frozen class-level tags for the current head of one class.
#[derive(Clone, Copy, Debug)]
struct HeadTag {
    start: u128,
    finish: u128,
    head_seq: u64,
}

/// A two-level (class, tenant) weighted-fair queue over opaque messages.
#[derive(Clone, Debug)]
pub struct HierarchicalWfq {
    class_level: Level,
    heads: BTreeMap<u8, HeadTag>,
    tenant_levels: BTreeMap<u8, Level>,
    queue: Vec<Item>,
    next_seq: u64,
}

impl HierarchicalWfq {
    pub fn new() -> HierarchicalWfq {
        HierarchicalWfq {
            class_level: Level::default(),
            heads: BTreeMap::new(),
            tenant_levels: BTreeMap::new(),
            queue: Vec::new(),
            next_seq: 0,
        }
    }

    /// Queue `bytes` for `tenant` with the given class and in-class weight.
    pub fn enqueue(&mut self, spec: &TenantSpec, bytes: u64) {
        self.enqueue_raw(spec.id, spec.class, spec.weight, bytes);
    }

    pub fn enqueue_raw(&mut self, tenant: u32, class: QosClass, weight: u64, bytes: u64) {
        let tenant_tag =
            self.tenant_levels.entry(class.id()).or_default().tag(tenant, bytes, weight);
        self.queue.push(Item { seq: self.next_seq, tenant, class, bytes, tenant_tag });
        self.next_seq += 1;
    }

    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// The next item of `class` in tenant-fair order, if any.
    fn head_of(&self, class: QosClass) -> Option<usize> {
        self.queue
            .iter()
            .enumerate()
            .filter(|(_, it)| it.class == class)
            .min_by_key(|(_, it)| (it.tenant_tag, it.seq))
            .map(|(i, _)| i)
    }

    /// Remove and return the next message in hierarchical fair order.
    ///
    /// Tenant-level tags are fixed at enqueue. The class level runs
    /// start-time fair queueing over each class's *head* message (cost =
    /// head bytes ÷ class weight): a head's start tag is frozen when it
    /// becomes head — `max(virtual time, class's last finish)` — so an
    /// unserved class's tag cannot be overtaken by the virtual clock and
    /// no class starves, while backlogged classes share the port by
    /// [`QosClass::base_weight`] regardless of queue depth.
    pub fn pop(&mut self) -> Option<(u32, u64)> {
        let mut best: Option<(u128, u8, usize)> = None;
        for class in [QosClass::Premium, QosClass::Standard, QosClass::Scavenger] {
            let Some(i) = self.head_of(class) else { continue };
            let it = &self.queue[i];
            let key = class.id();
            let stale =
                self.heads.get(&key).is_none_or(|h| h.head_seq != it.seq);
            if stale {
                let last = self.class_level.finish.get(&u32::from(key)).copied().unwrap_or(0);
                let start = self.class_level.vtime.max(last);
                let finish = start
                    + u128::from(it.bytes.max(1)) * TAG_SCALE / u128::from(class.base_weight());
                self.heads.insert(key, HeadTag { start, finish, head_seq: it.seq });
            }
            let h = self.heads[&key];
            if best.is_none_or(|(bf, bid, _)| (h.finish, key) < (bf, bid)) {
                best = Some((h.finish, key, i));
            }
        }
        let (_, class_id, i) = best?;
        let it = self.queue.swap_remove(i);
        let served = self.heads.remove(&class_id);
        if let Some(h) = served {
            self.class_level.finish.insert(u32::from(class_id), h.finish);
            self.class_level.advance(h.start);
        }
        if let Some(level) = self.tenant_levels.get_mut(&class_id) {
            level.advance(it.tenant_tag);
        }
        Some((it.tenant, it.bytes))
    }

    /// Drain the whole queue into service order.
    pub fn drain_order(&mut self) -> Vec<(u32, u64)> {
        let mut out = Vec::with_capacity(self.queue.len());
        while let Some(x) = self.pop() {
            out.push(x);
        }
        out
    }
}

impl Default for HierarchicalWfq {
    fn default() -> HierarchicalWfq {
        HierarchicalWfq::new()
    }
}

/// Per-tenant collapsed weights for a flat scheduler (`FairPort`),
/// derived from the config's class × tenant hierarchy.
pub fn collapsed_weights(cfg: &QosConfig) -> Vec<(u32, u64)> {
    cfg.tenants.iter().map(|t| (t.id, t.effective_weight())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn share(order: &[(u32, u64)], head: usize, tenant: u32) -> u64 {
        order.iter().take(head).filter(|(t, _)| *t == tenant).map(|(_, b)| b).sum()
    }

    #[test]
    fn classes_split_by_base_weight() {
        // Premium (8) vs scavenger (1), equal messages: over any prefix the
        // premium tenant should have ~8× the bytes served.
        let mut q = HierarchicalWfq::new();
        for _ in 0..90 {
            q.enqueue_raw(1, QosClass::Premium, 1, 4096);
            q.enqueue_raw(2, QosClass::Scavenger, 1, 4096);
        }
        let order = q.drain_order();
        let p = share(&order, 90, 1);
        let s = share(&order, 90, 2).max(1);
        assert!(p / s >= 6, "premium:scavenger byte share {p}:{s}");
    }

    #[test]
    fn tenants_split_within_a_class() {
        let mut q = HierarchicalWfq::new();
        for _ in 0..80 {
            q.enqueue_raw(10, QosClass::Standard, 3, 8192);
            q.enqueue_raw(11, QosClass::Standard, 1, 8192);
        }
        let order = q.drain_order();
        let a = share(&order, 80, 10);
        let b = share(&order, 80, 11).max(1);
        assert!(a / b >= 2, "in-class weighted share {a}:{b}");
        assert!(b > 0, "low-weight tenant must not starve");
    }

    #[test]
    fn collapsed_weights_match_hierarchy_shares() {
        // Long-run service shares of the hierarchy equal the collapsed
        // class×tenant weights for continuously backlogged flows.
        let cfg = QosConfig::new()
            .with_tenant(TenantSpec::new(1, "p", QosClass::Premium).weight(2)) // eff 16
            .with_tenant(TenantSpec::new(2, "s", QosClass::Scavenger).weight(2)); // eff 2
        let w = collapsed_weights(&cfg);
        assert_eq!(w, vec![(1, 16), (2, 2)]);
        let mut q = HierarchicalWfq::new();
        for _ in 0..400 {
            for t in &cfg.tenants {
                q.enqueue(t, 4096);
            }
        }
        let order = q.drain_order();
        let p = share(&order, 400, 1) as f64;
        let s = share(&order, 400, 2).max(1) as f64;
        let ratio = p / s;
        assert!((6.0..=10.0).contains(&ratio), "expected ~8:1 share, got {ratio:.2}");
    }

    #[test]
    fn pop_is_deterministic_and_complete() {
        let build = || {
            let mut q = HierarchicalWfq::new();
            for i in 0..37u32 {
                let class = match i % 3 {
                    0 => QosClass::Premium,
                    1 => QosClass::Standard,
                    _ => QosClass::Scavenger,
                };
                q.enqueue_raw(i % 5, class, u64::from(i % 4 + 1), 1024 + u64::from(i) * 7);
            }
            q.drain_order()
        };
        let a = build();
        assert_eq!(a, build());
        assert_eq!(a.len(), 37);
    }
}

//! The admission-control state machine.
//!
//! Every tenant request passes through [`AdmissionController::admit`]
//! before touching the data path. The decision is one of:
//!
//! * **Admit now** — tokens available, under the in-flight cap;
//! * **Admit delayed** (throttled) — the token bucket funds the request
//!   at a later instant within `max_delay`; the request starts then;
//! * **Shed** — over the in-flight cap, the token wait exceeds
//!   `max_delay`, or backpressure is asserted against a scavenger.
//!
//! Backpressure ([`Pressure`]) is keyed off the cache dirty ratio and
//! RAID-rebuild activity: while either is hot, scavenger tenants are
//! shed outright and standard tenants pay `pressure_delay`; premium
//! traffic is untouched. Completions feed per-tenant SLO tracking
//! (latency histogram + throughput meter, see [`crate::slo`]).
//!
//! Invariants (model-checked by `ys-check`): token balances stay within
//! `0..=burst`, every shed/admit counter is monotone, and the number of
//! in-flight admitted requests never exceeds the tenant's cap.

use std::collections::BinaryHeap;
use std::cmp::Reverse;

use ys_simcore::stats::{LatencyHisto, RateMeter};
use ys_simcore::time::SimTime;
#[cfg(test)]
use ys_simcore::time::SimDuration;

use crate::bucket::TokenBucket;
use crate::config::{QosClass, QosConfig, TenantSpec};
use crate::slo::SloStatus;

/// Why a request was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// The tenant is at its in-flight cap.
    InflightCap,
    /// Funding the request would exceed `max_delay`.
    RateLimit,
    /// Backpressure (dirty cache / rebuild) against a low class.
    Pressure,
}

/// Outcome of admission control for one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Proceed, starting at `start` (`start > now` ⇒ the request was
    /// throttled and queued for `start − now`).
    Admit { start: SimTime },
    Shed { reason: ShedReason },
}

/// Cluster backpressure signals sampled from the data path.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Pressure {
    /// Fraction of pooled cache pages holding dirty data or replicas.
    pub dirty_ratio: f64,
    /// A RAID rebuild (or geo resync) is in flight.
    pub rebuild_active: bool,
}

/// Monotone per-tenant admission counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantQosStats {
    pub requests: u64,
    pub admitted: u64,
    /// Admitted, but with a delayed start (token wait or pressure delay).
    pub throttled: u64,
    pub shed: u64,
    pub shed_rate: u64,
    pub shed_inflight: u64,
    pub shed_pressure: u64,
    pub bytes_admitted: u64,
    pub bytes_shed: u64,
    /// Total queueing delay imposed on throttled requests, nanoseconds.
    pub queued_ns: u64,
}

#[derive(Clone, Debug)]
struct TenantState {
    spec: TenantSpec,
    bucket: TokenBucket,
    /// Admitted requests whose completion instant is not yet known.
    open: u32,
    /// Known completion instants of admitted requests, min-first.
    completions: BinaryHeap<Reverse<u64>>,
    stats: TenantQosStats,
    latency: LatencyHisto,
    meter: RateMeter,
}

impl TenantState {
    fn new(spec: TenantSpec) -> TenantState {
        let bucket = TokenBucket::new(spec.rate_bytes_per_sec, spec.burst_bytes);
        TenantState {
            spec,
            bucket,
            open: 0,
            completions: BinaryHeap::new(),
            stats: TenantQosStats::default(),
            latency: LatencyHisto::new(),
            meter: RateMeter::new(),
        }
    }

    /// In-flight admitted requests as of `now`.
    fn inflight(&mut self, now: SimTime) -> u32 {
        while let Some(&Reverse(done)) = self.completions.peek() {
            if done <= now.nanos() {
                self.completions.pop();
            } else {
                break;
            }
        }
        self.open
            + u32::try_from(self.completions.len()).unwrap_or(u32::MAX) // saturating fallback
    }
}

/// Per-tenant admission control, throttling, and SLO accounting.
#[derive(Clone, Debug)]
pub struct AdmissionController {
    cfg: QosConfig,
    tenants: Vec<TenantState>,
    pressure: Pressure,
}

impl AdmissionController {
    pub fn new(cfg: QosConfig) -> AdmissionController {
        let tenants = cfg.tenants.iter().cloned().map(TenantState::new).collect();
        AdmissionController { cfg, tenants, pressure: Pressure::default() }
    }

    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    pub fn cfg(&self) -> &QosConfig {
        &self.cfg
    }

    /// Update the backpressure signals (sampled before each admission).
    pub fn set_pressure(&mut self, p: Pressure) {
        self.pressure = p;
    }

    pub fn pressure(&self) -> Pressure {
        self.pressure
    }

    /// True while either backpressure signal is asserted.
    pub fn under_pressure(&self) -> bool {
        self.pressure.rebuild_active || self.pressure.dirty_ratio > self.cfg.dirty_shed_ratio
    }

    fn state_mut(&mut self, tenant: u32) -> Option<&mut TenantState> {
        self.tenants.iter_mut().find(|t| t.spec.id == tenant)
    }

    fn state(&self, tenant: u32) -> Option<&TenantState> {
        self.tenants.iter().find(|t| t.spec.id == tenant)
    }

    /// Decide one request of `bytes` for `tenant` arriving at `now`.
    ///
    /// Unknown tenants (not in the table) and disabled controllers admit
    /// unconditionally with no accounting.
    pub fn admit(&mut self, now: SimTime, tenant: u32, bytes: u64) -> Decision {
        if !self.cfg.enabled {
            return Decision::Admit { start: now };
        }
        let pressure = self.under_pressure();
        let max_delay = self.cfg.max_delay;
        let pressure_delay = self.cfg.pressure_delay;
        let Some(st) = self.state_mut(tenant) else {
            return Decision::Admit { start: now };
        };
        st.stats.requests += 1;
        if st.inflight(now) >= st.spec.inflight_cap {
            st.stats.shed += 1;
            st.stats.shed_inflight += 1;
            st.stats.bytes_shed += bytes;
            return Decision::Shed { reason: ShedReason::InflightCap };
        }
        if pressure && st.spec.class == QosClass::Scavenger {
            st.stats.shed += 1;
            st.stats.shed_pressure += 1;
            st.stats.bytes_shed += bytes;
            return Decision::Shed { reason: ShedReason::Pressure };
        }
        let ready = st.bucket.ready_at(now, bytes);
        if ready.since(now) > max_delay {
            st.stats.shed += 1;
            st.stats.shed_rate += 1;
            st.stats.bytes_shed += bytes;
            return Decision::Shed { reason: ShedReason::RateLimit };
        }
        let funded = st.bucket.take(ready, bytes);
        debug_assert!(funded, "ready_at must fund take");
        let mut start = ready;
        if pressure && st.spec.class == QosClass::Standard {
            start += pressure_delay;
        }
        st.open += 1;
        st.stats.admitted += 1;
        st.stats.bytes_admitted += bytes;
        if start > now {
            st.stats.throttled += 1;
            st.stats.queued_ns += start.since(now).nanos();
        }
        Decision::Admit { start }
    }

    /// Record the completion of an admitted request: releases its
    /// in-flight slot at `done` and feeds the tenant's SLO tracking with
    /// the request's end-to-end latency (measured from `issued`).
    pub fn complete(&mut self, tenant: u32, issued: SimTime, done: SimTime, bytes: u64) {
        if !self.cfg.enabled {
            return;
        }
        let Some(st) = self.state_mut(tenant) else {
            return;
        };
        if st.open == 0 {
            return;
        }
        st.open -= 1;
        st.completions.push(Reverse(done.nanos()));
        st.latency.record(done.since(issued));
        st.meter.record(done, bytes);
    }

    pub fn stats(&self, tenant: u32) -> Option<TenantQosStats> {
        self.state(tenant).map(|t| t.stats)
    }

    pub fn latency(&self, tenant: u32) -> Option<&LatencyHisto> {
        self.state(tenant).map(|t| &t.latency)
    }

    /// Remaining token balance, for introspection and model checking.
    pub fn tokens(&self, tenant: u32) -> Option<u64> {
        self.state(tenant).map(|t| t.bucket.tokens())
    }

    /// In-flight admitted requests for `tenant` as of `now`.
    pub fn inflight(&mut self, now: SimTime, tenant: u32) -> u32 {
        self.state_mut(tenant).map(|t| t.inflight(now)).unwrap_or(0)
    }

    /// Per-tenant SLO snapshot (p99 vs budget, achieved vs floor).
    pub fn slo_status(&self, tenant: u32) -> Option<SloStatus> {
        let st = self.state(tenant)?;
        Some(SloStatus::evaluate(&st.spec, &st.latency, &st.meter, st.stats))
    }

    /// SLO snapshots for every configured tenant, in id order.
    pub fn slo_report(&self) -> Vec<SloStatus> {
        self.tenants
            .iter()
            .map(|st| SloStatus::evaluate(&st.spec, &st.latency, &st.meter, st.stats))
            .collect()
    }

    /// Audit the controller's invariants; returns violations (empty = ok).
    pub fn audit(&self) -> Vec<String> {
        let mut out = Vec::new();
        for st in &self.tenants {
            let id = st.spec.id;
            if st.bucket.tokens() > st.bucket.burst() {
                out.push(format!("tenant {id}: tokens {} exceed burst {}", st.bucket.tokens(), st.bucket.burst()));
            }
            let inflight = st.open as usize + st.completions.len();
            if inflight > st.spec.inflight_cap as usize {
                out.push(format!("tenant {id}: in-flight {inflight} exceeds cap {}", st.spec.inflight_cap));
            }
            let s = st.stats;
            if s.admitted + s.shed != s.requests {
                out.push(format!("tenant {id}: admitted {} + shed {} != requests {}", s.admitted, s.shed, s.requests));
            }
            if s.shed_rate + s.shed_inflight + s.shed_pressure != s.shed {
                out.push(format!("tenant {id}: shed breakdown does not sum to {}", s.shed));
            }
            if s.throttled > s.admitted {
                out.push(format!("tenant {id}: throttled {} exceeds admitted {}", s.throttled, s.admitted));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> QosConfig {
        QosConfig::new()
            .with_max_delay(SimDuration::from_millis(10))
            .with_dirty_shed_ratio(0.5)
            .with_pressure_delay(SimDuration::from_millis(1))
            .with_tenant(
                TenantSpec::new(1, "prem", QosClass::Premium).inflight_cap(2),
            )
            .with_tenant(
                TenantSpec::new(2, "std", QosClass::Standard)
                    .rate_mb_per_sec(1)
                    .burst_bytes(64 * 1024),
            )
            .with_tenant(TenantSpec::new(3, "scav", QosClass::Scavenger))
    }

    #[test]
    fn disabled_controller_admits_everything() {
        let mut ac = AdmissionController::new(QosConfig::disabled());
        let d = ac.admit(SimTime(5), 999, u64::MAX);
        assert_eq!(d, Decision::Admit { start: SimTime(5) });
        assert!(ac.audit().is_empty());
    }

    #[test]
    fn unknown_tenant_bypasses() {
        let mut ac = AdmissionController::new(cfg());
        assert_eq!(ac.admit(SimTime::ZERO, 42, 1 << 30), Decision::Admit { start: SimTime::ZERO });
        assert_eq!(ac.stats(42), None);
    }

    #[test]
    fn token_exhaustion_throttles_then_sheds() {
        let mut ac = AdmissionController::new(cfg());
        // Burst 64 KiB at 1 MB/s. First 64 KiB free, next delayed, then shed.
        assert_eq!(ac.admit(SimTime::ZERO, 2, 64 * 1024), Decision::Admit { start: SimTime::ZERO });
        match ac.admit(SimTime::ZERO, 2, 8 * 1024) {
            Decision::Admit { start } => assert!(start > SimTime::ZERO, "second burst must wait"),
            d => panic!("expected throttled admit, got {d:?}"),
        }
        // 64 KiB more would need ~65 ms > 10 ms max_delay.
        assert_eq!(
            ac.admit(SimTime::ZERO, 2, 64 * 1024),
            Decision::Shed { reason: ShedReason::RateLimit }
        );
        let s = ac.stats(2).unwrap();
        assert_eq!((s.requests, s.admitted, s.throttled, s.shed, s.shed_rate), (3, 2, 1, 1, 1));
        assert!(s.queued_ns > 0);
        assert!(ac.audit().is_empty());
    }

    #[test]
    fn inflight_cap_sheds_until_completion_passes() {
        let mut ac = AdmissionController::new(cfg());
        let t0 = SimTime::ZERO;
        for _ in 0..2 {
            assert!(matches!(ac.admit(t0, 1, 4096), Decision::Admit { .. }));
        }
        assert_eq!(ac.admit(t0, 1, 4096), Decision::Shed { reason: ShedReason::InflightCap });
        // Both complete at t=1ms; a request at 2ms is admitted again.
        ac.complete(1, t0, SimTime(1_000_000), 4096);
        ac.complete(1, t0, SimTime(1_000_000), 4096);
        assert_eq!(ac.inflight(SimTime(2_000_000), 1), 0);
        assert!(matches!(ac.admit(SimTime(2_000_000), 1, 4096), Decision::Admit { .. }));
        assert!(ac.audit().is_empty());
    }

    #[test]
    fn pressure_sheds_scavenger_delays_standard_spares_premium() {
        let mut ac = AdmissionController::new(cfg());
        ac.set_pressure(Pressure { dirty_ratio: 0.9, rebuild_active: false });
        assert!(ac.under_pressure());
        assert_eq!(ac.admit(SimTime::ZERO, 3, 4096), Decision::Shed { reason: ShedReason::Pressure });
        match ac.admit(SimTime::ZERO, 2, 4096) {
            Decision::Admit { start } => {
                assert_eq!(start, SimTime(1_000_000), "standard pays the pressure delay")
            }
            d => panic!("{d:?}"),
        }
        assert_eq!(ac.admit(SimTime::ZERO, 1, 4096), Decision::Admit { start: SimTime::ZERO });
        ac.set_pressure(Pressure { dirty_ratio: 0.1, rebuild_active: true });
        assert!(ac.under_pressure(), "rebuild alone asserts pressure");
        ac.set_pressure(Pressure::default());
        assert!(!ac.under_pressure());
        assert!(matches!(ac.admit(SimTime(1), 3, 4096), Decision::Admit { .. }));
        assert!(ac.audit().is_empty());
    }

    #[test]
    fn completions_feed_slo_tracking() {
        let mut ac = AdmissionController::new(cfg());
        for i in 0..10u64 {
            let now = SimTime(i * 1_000_000);
            if let Decision::Admit { start } = ac.admit(now, 1, 64 * 1024) {
                ac.complete(1, now, start + SimDuration::from_micros(200), 64 * 1024);
            }
        }
        let slo = ac.slo_status(1).unwrap();
        assert_eq!(slo.ops, 10);
        assert!(slo.p99 >= SimDuration::from_micros(100), "log-bucketed p99 {:?}", slo.p99);
        assert!(slo.latency_met, "no budget configured means met");
        let report = ac.slo_report();
        assert_eq!(report.len(), 3);
        assert_eq!(report[0].tenant, 1);
    }
}

//! Per-tenant SLO evaluation.
//!
//! A tenant's contract ([`TenantSpec`]) can carry two service-level
//! objectives: a p99 latency budget and a sustained throughput floor.
//! [`SloStatus`] is the point-in-time evaluation of both against the
//! tenant's observed latency histogram and rate meter, plus the admission
//! counters that explain *why* an objective was missed (heavy shedding vs
//! genuine contention). `ys-obs` lifts these into the metrics registry.

use ys_simcore::stats::{LatencyHisto, RateMeter};
use ys_simcore::time::SimDuration;

use crate::admission::TenantQosStats;
use crate::config::TenantSpec;

/// Point-in-time SLO evaluation for one tenant.
#[derive(Clone, Debug, PartialEq)]
pub struct SloStatus {
    pub tenant: u32,
    pub name: String,
    /// Completed (admitted) operations observed so far.
    pub ops: u64,
    pub p99: SimDuration,
    /// Configured latency budget (`ZERO` = no latency SLO).
    pub latency_budget: SimDuration,
    /// p99 ≤ budget (vacuously true with no budget or no traffic).
    pub latency_met: bool,
    pub achieved_mb_per_sec: f64,
    /// Configured floor in MB/s (0 = no floor).
    pub floor_mb_per_sec: u64,
    /// Achieved ≥ floor (vacuously true with no floor or no traffic).
    pub floor_met: bool,
    pub stats: TenantQosStats,
}

impl SloStatus {
    pub fn evaluate(
        spec: &TenantSpec,
        latency: &LatencyHisto,
        meter: &RateMeter,
        stats: TenantQosStats,
    ) -> SloStatus {
        let ops = latency.count();
        let p99 = latency.p99();
        let latency_met = spec.latency_budget.is_zero() || ops == 0 || p99 <= spec.latency_budget;
        let achieved = meter.mb_per_sec();
        let floor_met =
            spec.floor_mb_per_sec == 0 || ops == 0 || achieved >= spec.floor_mb_per_sec as f64;
        SloStatus {
            tenant: spec.id,
            name: spec.name.clone(),
            ops,
            p99,
            latency_budget: spec.latency_budget,
            latency_met,
            achieved_mb_per_sec: achieved,
            floor_mb_per_sec: spec.floor_mb_per_sec,
            floor_met,
            stats,
        }
    }

    /// Both objectives satisfied.
    pub fn met(&self) -> bool {
        self.latency_met && self.floor_met
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::QosClass;
    use ys_simcore::time::SimTime;

    #[test]
    fn budget_violation_is_detected() {
        let spec = TenantSpec::new(1, "t", QosClass::Standard)
            .latency_budget(SimDuration::from_micros(100));
        let mut h = LatencyHisto::new();
        let meter = RateMeter::new();
        for _ in 0..100 {
            h.record(SimDuration::from_millis(5));
        }
        let s = SloStatus::evaluate(&spec, &h, &meter, TenantQosStats::default());
        assert!(!s.latency_met);
        assert!(!s.met());
    }

    #[test]
    fn floor_checks_achieved_rate() {
        let spec = TenantSpec::new(1, "t", QosClass::Premium).floor_mb_per_sec(10);
        let mut h = LatencyHisto::new();
        let mut meter = RateMeter::new();
        // 100 MB over 1 s = 100 MB/s ≥ 10 MB/s floor.
        h.record(SimDuration::from_millis(1));
        meter.record(SimTime::ZERO, 1);
        meter.record(SimTime(1_000_000_000), 100_000_000);
        let s = SloStatus::evaluate(&spec, &h, &meter, TenantQosStats::default());
        assert!(s.floor_met, "achieved {}", s.achieved_mb_per_sec);
    }

    #[test]
    fn no_traffic_is_vacuously_met() {
        let spec = TenantSpec::new(1, "t", QosClass::Standard)
            .latency_budget(SimDuration::from_nanos(1))
            .floor_mb_per_sec(1_000_000);
        let s = SloStatus::evaluate(
            &spec,
            &LatencyHisto::new(),
            &RateMeter::new(),
            TenantQosStats::default(),
        );
        assert!(s.met());
    }
}

//! `ys-qos` — multi-tenant quality of service for the shared store.
//!
//! The paper's premise is a *shared* national-lab infrastructure: many
//! labs hit the same pooled cache-coherent blades (§3 charge-back, §6.3
//! hot-data skew), so one tenant's flood must not starve another's
//! interactive traffic. This crate is the policy layer that makes the
//! pool shareable:
//!
//! * [`config`] — tenant table: QoS class, weights, token-bucket rates,
//!   in-flight caps, SLO targets ([`QosConfig`], [`TenantSpec`]);
//! * [`bucket`] — deterministic integer [`TokenBucket`] throttles
//!   (exact nanosecond-granularity refill, no floats);
//! * [`wfq`] — [`HierarchicalWfq`]: class-level then tenant-level
//!   weighted-fair queueing, collapsible to per-tenant effective weights
//!   for `ys_simnet::FairPort` at the blade/FC-port level;
//! * [`admission`] — the [`AdmissionController`] state machine:
//!   admit / delay / shed per request, with backpressure keyed off the
//!   cache dirty ratio and RAID-rebuild activity;
//! * [`slo`] — per-tenant latency budgets and throughput floors
//!   ([`SloStatus`]), fed to the `ys-obs` metrics registry.
//!
//! Everything is deterministic in virtual time: the same `(config, op
//! sequence)` produces the same admissions, delays, and sheds. The
//! admission state machine's invariants (tokens never negative, shed
//! counters monotone, in-flight ≤ cap) are model-checked by `ys-check`.

pub mod admission;
pub mod bucket;
pub mod config;
pub mod slo;
pub mod wfq;

pub use admission::{AdmissionController, Decision, Pressure, ShedReason, TenantQosStats};
pub use bucket::TokenBucket;
pub use config::{QosClass, QosConfig, TenantSpec};
pub use slo::SloStatus;
pub use wfq::HierarchicalWfq;

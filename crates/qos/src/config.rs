//! Tenant and policy configuration for the QoS layer.
//!
//! A [`QosConfig`] is a small declarative table: one [`TenantSpec`] per
//! lab/tenant naming its [`QosClass`], scheduling weight, token-bucket
//! envelope, in-flight cap, and SLO targets, plus cluster-wide policy
//! knobs (maximum queueing delay before a request is shed, the cache
//! dirty-ratio threshold that asserts backpressure). `QosConfig::disabled()`
//! is the default everywhere — with it, the data path is bit-identical to
//! a build without this crate.

use ys_simcore::time::SimDuration;

/// Service class, ordered by privilege. Class determines the *coarse*
/// bandwidth share (class weights in the WFQ hierarchy) and how the
/// tenant is treated under backpressure: `Premium` is never penalized,
/// `Standard` is delayed, `Scavenger` is shed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QosClass {
    Scavenger,
    Standard,
    Premium,
}

impl QosClass {
    /// Class-level WFQ weight (the outer level of the hierarchy).
    pub fn base_weight(self) -> u64 {
        match self {
            QosClass::Premium => 8,
            QosClass::Standard => 4,
            QosClass::Scavenger => 1,
        }
    }

    /// Stable wire id for charge-back records (0 = unclassified).
    pub fn id(self) -> u8 {
        match self {
            QosClass::Scavenger => 1,
            QosClass::Standard => 2,
            QosClass::Premium => 3,
        }
    }

    pub fn from_id(id: u8) -> Option<QosClass> {
        match id {
            1 => Some(QosClass::Scavenger),
            2 => Some(QosClass::Standard),
            3 => Some(QosClass::Premium),
            _ => None,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            QosClass::Scavenger => "scavenger",
            QosClass::Standard => "standard",
            QosClass::Premium => "premium",
        }
    }
}

/// Per-tenant QoS contract.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantSpec {
    /// Tenant id — matches the `tenant` field on volumes / charge-back.
    pub id: u32,
    pub name: String,
    pub class: QosClass,
    /// Scheduling weight *within* the class (inner WFQ level).
    pub weight: u64,
    /// Token-bucket sustained rate in bytes/second; 0 = unthrottled.
    pub rate_bytes_per_sec: u64,
    /// Token-bucket depth: how large a burst may exceed the rate.
    pub burst_bytes: u64,
    /// Maximum simultaneously in-flight admitted requests.
    pub inflight_cap: u32,
    /// SLO: p99 latency budget; `ZERO` = no latency SLO.
    pub latency_budget: SimDuration,
    /// SLO: sustained throughput floor in MB/s; 0 = no floor.
    pub floor_mb_per_sec: u64,
}

impl TenantSpec {
    pub fn new(id: u32, name: impl Into<String>, class: QosClass) -> TenantSpec {
        TenantSpec {
            id,
            name: name.into(),
            class,
            weight: 1,
            rate_bytes_per_sec: 0,
            burst_bytes: 8 << 20,
            inflight_cap: u32::MAX,
            latency_budget: SimDuration::ZERO,
            floor_mb_per_sec: 0,
        }
    }

    pub fn weight(mut self, w: u64) -> TenantSpec {
        self.weight = w.max(1);
        self
    }

    /// Sustained rate limit in MB/s (decimal megabytes, matching link math).
    pub fn rate_mb_per_sec(mut self, mb: u64) -> TenantSpec {
        self.rate_bytes_per_sec = mb * 1_000_000;
        self
    }

    pub fn burst_bytes(mut self, b: u64) -> TenantSpec {
        self.burst_bytes = b.max(1);
        self
    }

    pub fn inflight_cap(mut self, cap: u32) -> TenantSpec {
        self.inflight_cap = cap.max(1);
        self
    }

    pub fn latency_budget(mut self, d: SimDuration) -> TenantSpec {
        self.latency_budget = d;
        self
    }

    pub fn floor_mb_per_sec(mut self, mb: u64) -> TenantSpec {
        self.floor_mb_per_sec = mb;
        self
    }

    /// Effective weight after collapsing the class/tenant hierarchy:
    /// class base weight × tenant weight.
    pub fn effective_weight(&self) -> u64 {
        self.class.base_weight() * self.weight
    }
}

/// Cluster-wide QoS policy: the tenant table plus backpressure knobs.
#[derive(Clone, Debug, PartialEq)]
pub struct QosConfig {
    pub enabled: bool,
    pub tenants: Vec<TenantSpec>,
    /// Longest a request may be delayed for tokens before being shed.
    pub max_delay: SimDuration,
    /// Cache dirty ratio above which backpressure is asserted.
    pub dirty_shed_ratio: f64,
    /// Extra delay applied to `Standard` tenants while backpressure
    /// (dirty cache or active rebuild) is asserted.
    pub pressure_delay: SimDuration,
}

impl QosConfig {
    /// QoS off: every request is admitted untouched. The default.
    pub fn disabled() -> QosConfig {
        QosConfig {
            enabled: false,
            tenants: Vec::new(),
            max_delay: SimDuration::from_millis(50),
            dirty_shed_ratio: 0.75,
            pressure_delay: SimDuration::from_millis(2),
        }
    }

    /// QoS on with an empty tenant table (unknown tenants pass through).
    pub fn new() -> QosConfig {
        QosConfig { enabled: true, ..QosConfig::disabled() }
    }

    pub fn with_tenant(mut self, spec: TenantSpec) -> QosConfig {
        self.tenants.retain(|t| t.id != spec.id);
        self.tenants.push(spec);
        self.tenants.sort_by_key(|t| t.id);
        self
    }

    pub fn with_max_delay(mut self, d: SimDuration) -> QosConfig {
        self.max_delay = d;
        self
    }

    pub fn with_dirty_shed_ratio(mut self, r: f64) -> QosConfig {
        self.dirty_shed_ratio = r.clamp(0.0, 1.0);
        self
    }

    pub fn with_pressure_delay(mut self, d: SimDuration) -> QosConfig {
        self.pressure_delay = d;
        self
    }

    pub fn tenant(&self, id: u32) -> Option<&TenantSpec> {
        self.tenants.iter().find(|t| t.id == id)
    }

    /// Collapsed per-tenant WFQ weight (class × tenant), 1 for unknowns.
    pub fn effective_weight(&self, id: u32) -> u64 {
        self.tenant(id).map(TenantSpec::effective_weight).unwrap_or(1)
    }

    /// Charge-back class id for a tenant (0 = unclassified).
    pub fn class_id(&self, id: u32) -> u8 {
        self.tenant(id).map(|t| t.class.id()).unwrap_or(0)
    }
}

impl Default for QosConfig {
    fn default() -> QosConfig {
        QosConfig::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_ids_round_trip() {
        for c in [QosClass::Scavenger, QosClass::Standard, QosClass::Premium] {
            assert_eq!(QosClass::from_id(c.id()), Some(c));
        }
        assert_eq!(QosClass::from_id(0), None);
        assert!(QosClass::Premium > QosClass::Standard);
        assert!(QosClass::Standard > QosClass::Scavenger);
    }

    #[test]
    fn tenant_table_is_sorted_and_deduped() {
        let cfg = QosConfig::new()
            .with_tenant(TenantSpec::new(7, "b", QosClass::Standard))
            .with_tenant(TenantSpec::new(3, "a", QosClass::Premium).weight(2))
            .with_tenant(TenantSpec::new(7, "b2", QosClass::Scavenger));
        assert_eq!(cfg.tenants.len(), 2);
        assert_eq!(cfg.tenants[0].id, 3);
        assert_eq!(cfg.tenant(7).map(|t| t.class), Some(QosClass::Scavenger));
        assert_eq!(cfg.effective_weight(3), 8 * 2);
        assert_eq!(cfg.effective_weight(99), 1);
        assert_eq!(cfg.class_id(7), QosClass::Scavenger.id());
        assert_eq!(cfg.class_id(99), 0);
    }

    #[test]
    fn disabled_is_default() {
        assert!(!QosConfig::default().enabled);
        assert!(QosConfig::new().enabled);
    }
}

//! Deterministic token-bucket throttle.
//!
//! The bucket holds byte tokens refilled continuously at a configured
//! rate. Refill is *exact integer arithmetic* at nanosecond granularity:
//! the fractional token remainder (`rate × Δt mod 1e9`) is carried
//! forward, so refilling in one step or a thousand small steps yields the
//! same token count — a requirement for deterministic replay and for the
//! ys-check model. Tokens are unsigned and never borrowed, so "tokens
//! never negative" holds structurally; admission instead asks
//! [`TokenBucket::ready_at`] *when* enough tokens will exist and delays
//! or sheds the request.

use ys_simcore::time::{SimDuration, SimTime};

const NANOS_PER_SEC: u128 = 1_000_000_000;

/// A byte-granularity token bucket (rate 0 = unthrottled).
#[derive(Clone, Debug)]
pub struct TokenBucket {
    rate_bytes_per_sec: u64,
    burst: u64,
    tokens: u64,
    /// Fractional refill carry: numerator of (rate × Δt) mod 1e9.
    frac: u64,
    last: SimTime,
}

impl TokenBucket {
    /// A bucket that starts full.
    pub fn new(rate_bytes_per_sec: u64, burst: u64) -> TokenBucket {
        let burst = burst.max(1);
        TokenBucket { rate_bytes_per_sec, burst, tokens: burst, frac: 0, last: SimTime::ZERO }
    }

    pub fn rate_bytes_per_sec(&self) -> u64 {
        self.rate_bytes_per_sec
    }

    pub fn burst(&self) -> u64 {
        self.burst
    }

    /// Current token balance (as of the last refill instant).
    pub fn tokens(&self) -> u64 {
        self.tokens
    }

    /// Advance the refill clock to `now`. Idempotent; ignores rewinds.
    pub fn refill(&mut self, now: SimTime) {
        if now <= self.last || self.rate_bytes_per_sec == 0 {
            self.last = self.last.max(now);
            return;
        }
        let dt = u128::from(now.since(self.last).nanos());
        let num = dt * u128::from(self.rate_bytes_per_sec) + u128::from(self.frac);
        let add = num / NANOS_PER_SEC;
        let added = self.tokens.saturating_add(u64::try_from(add).unwrap_or(u64::MAX)); // saturating fallback
        if added >= self.burst {
            self.tokens = self.burst;
            self.frac = 0;
        } else {
            self.tokens = added;
            self.frac = (num % NANOS_PER_SEC) as u64;
        }
        self.last = now;
    }

    /// Earliest instant at which `bytes` tokens will be available.
    /// Returns `now` for unthrottled buckets or when already funded.
    ///
    /// A prior [`take`](TokenBucket::take) at a delayed-admission instant
    /// may have advanced the bucket clock past `now`; the quote is always
    /// relative to the bucket clock, so taking at the returned instant is
    /// guaranteed to succeed.
    pub fn ready_at(&mut self, now: SimTime, bytes: u64) -> SimTime {
        self.refill(now);
        if self.rate_bytes_per_sec == 0 || self.tokens >= bytes {
            return now;
        }
        let deficit = u128::from(bytes - self.tokens) * NANOS_PER_SEC - u128::from(self.frac);
        let rate = u128::from(self.rate_bytes_per_sec);
        let wait_ns = deficit.div_ceil(rate);
        // Tokens and frac are as of `self.last`, which a delayed take may
        // have pushed beyond `now` — the wait accrues from there.
        self.last + SimDuration::from_nanos(u64::try_from(wait_ns).unwrap_or(u64::MAX)) // saturating fallback
    }

    /// Take `bytes` tokens at `at` (refilling first). Returns false — and
    /// takes nothing — if the balance is insufficient.
    pub fn take(&mut self, at: SimTime, bytes: u64) -> bool {
        self.refill(at);
        if self.rate_bytes_per_sec == 0 {
            return true;
        }
        if self.tokens >= bytes {
            self.tokens -= bytes;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_full_and_caps_at_burst() {
        let mut b = TokenBucket::new(1_000_000, 4096);
        assert_eq!(b.tokens(), 4096);
        b.refill(SimTime(1_000_000_000));
        assert_eq!(b.tokens(), 4096, "refill never exceeds burst");
    }

    #[test]
    fn refill_is_exact_and_step_invariant() {
        // 333 bytes/s: fractional carry matters.
        let mk = || TokenBucket::new(333, 1_000_000);
        let mut one = mk();
        let mut many = mk();
        one.take(SimTime::ZERO, 1_000_000);
        many.take(SimTime::ZERO, 1_000_000);
        let end = SimTime(10_000_000_007);
        one.refill(end);
        for i in 1..=1000u64 {
            many.refill(SimTime(end.0 * i / 1000));
        }
        assert_eq!(one.tokens(), many.tokens(), "refill must not depend on step size");
        // 10.000000007 s × 333 B/s = 3330.000002331 → 3330 tokens.
        assert_eq!(one.tokens(), 3330);
    }

    #[test]
    fn ready_at_predicts_take() {
        let mut b = TokenBucket::new(1_000_000, 64 * 1024);
        assert!(b.take(SimTime::ZERO, 64 * 1024));
        let ready = b.ready_at(SimTime::ZERO, 50_000);
        assert!(ready > SimTime::ZERO);
        // One nanosecond early: not yet funded.
        let mut early = b.clone();
        assert!(!early.take(SimTime(ready.0 - 1), 50_000));
        assert!(b.take(ready, 50_000), "funded exactly at ready_at");
    }

    #[test]
    fn ready_at_quotes_from_the_advanced_bucket_clock() {
        let mut b = TokenBucket::new(1_000_000, 64 * 1024);
        assert!(b.take(SimTime::ZERO, 64 * 1024));
        // A delayed admission spends tokens at a future instant, pushing
        // the bucket clock ahead of the caller's.
        let r1 = b.ready_at(SimTime::ZERO, 64 * 1024);
        assert!(b.take(r1, 64 * 1024));
        // The next request arrives before r1 on the caller's clock; the
        // quote must account for the tokens already spent at r1.
        let r2 = b.ready_at(SimTime(1), 64 * 1024);
        assert!(r2 > r1);
        assert!(b.take(r2, 64 * 1024), "quoted instant funds the take");
    }

    #[test]
    fn unthrottled_bucket_always_ready() {
        let mut b = TokenBucket::new(0, 1);
        assert_eq!(b.ready_at(SimTime(5), u64::MAX), SimTime(5));
        assert!(b.take(SimTime(5), u64::MAX));
    }

    #[test]
    fn take_refuses_rather_than_borrowing() {
        let mut b = TokenBucket::new(100, 1000);
        assert!(b.take(SimTime::ZERO, 900));
        assert!(!b.take(SimTime::ZERO, 200), "no borrowing");
        assert_eq!(b.tokens(), 100, "failed take leaves balance intact");
    }
}

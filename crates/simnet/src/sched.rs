//! Port-level weighted-fair scheduling.
//!
//! A [`Link`] is strictly FIFO: whoever reserves first serializes first,
//! so one flow that floods a shared FC port starves everyone behind it.
//! [`FairPort`] puts a weighted-fair queue in front of a link: pending
//! messages carry start/finish *virtual-time tags* (start-time fair
//! queueing, integer fixed-point — no floats, fully deterministic) and the
//! port always serves the eligible message with the smallest finish tag.
//! Backlogged flows then share the port's bandwidth in proportion to their
//! weights instead of in arrival order, which is the §6.3 noisy-neighbor
//! defence at the blade/FC-port level.
//!
//! Usage is batch-oriented to fit the simulation style: `enqueue` the
//! messages (each with the instant it becomes ready at the port), then
//! `service()` drains them through the underlying link in fair order and
//! reports one [`Transfer`] per message.

use std::collections::BTreeMap;

use ys_simcore::time::SimTime;

use crate::link::{Link, LinkSpec, Transfer};

/// Fixed-point scale for virtual-time tags (bytes × SCALE / weight).
const TAG_SCALE: u128 = 1 << 16;

#[derive(Clone, Debug)]
struct Pending {
    seq: u64,
    flow: u32,
    bytes: u64,
    ready: SimTime,
    finish_tag: u128,
    start_tag: u128,
}

/// One serviced message: which flow it belonged to and its link reservation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Served {
    /// Caller-supplied message id (the `seq` returned by [`FairPort::enqueue`]).
    pub seq: u64,
    pub flow: u32,
    pub transfer: Transfer,
}

/// A shared output port with weighted-fair queueing in front of its link.
#[derive(Clone, Debug)]
pub struct FairPort {
    link: Link,
    weights: BTreeMap<u32, u64>,
    flow_finish: BTreeMap<u32, u128>,
    virtual_time: u128,
    queue: Vec<Pending>,
    next_seq: u64,
}

impl FairPort {
    pub fn new(spec: LinkSpec) -> FairPort {
        FairPort {
            link: Link::new(spec),
            weights: BTreeMap::new(),
            flow_finish: BTreeMap::new(),
            virtual_time: 0,
            queue: Vec::new(),
            next_seq: 0,
        }
    }

    /// Set a flow's scheduling weight (default 1). Bandwidth among
    /// backlogged flows divides in proportion to these.
    pub fn set_weight(&mut self, flow: u32, weight: u64) {
        self.weights.insert(flow, weight.max(1));
    }

    pub fn weight(&self, flow: u32) -> u64 {
        self.weights.get(&flow).copied().unwrap_or(1)
    }

    /// The underlying link (stats, utilization).
    pub fn link(&self) -> &Link {
        &self.link
    }

    /// Queue a message of `bytes` for `flow`, becoming eligible for
    /// service at `ready` (e.g. when its last bit arrives from the
    /// upstream hop). Returns the message's sequence id, echoed back in
    /// [`Served::seq`].
    pub fn enqueue(&mut self, flow: u32, ready: SimTime, bytes: u64) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let last = self.flow_finish.get(&flow).copied().unwrap_or(0);
        let start_tag = self.virtual_time.max(last);
        let cost = u128::from(bytes.max(1)) * TAG_SCALE / u128::from(self.weight(flow));
        let finish_tag = start_tag + cost;
        self.flow_finish.insert(flow, finish_tag);
        self.queue.push(Pending { seq, flow, bytes, ready, finish_tag, start_tag });
        seq
    }

    /// Number of messages awaiting service.
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// Drain the queue through the link in weighted-fair order.
    ///
    /// The port is work-conserving: at each step it advances to the
    /// earliest instant at which both the link and at least one message
    /// are available, then serves the *eligible* (ready) message with the
    /// smallest finish tag, breaking ties by enqueue order.
    pub fn service(&mut self) -> Vec<Served> {
        let mut out = Vec::with_capacity(self.queue.len());
        while !self.queue.is_empty() {
            let min_ready = self
                .queue
                .iter()
                .map(|p| p.ready)
                .min()
                .unwrap_or(SimTime::ZERO); // queue is non-empty here
            let horizon = self.link.next_free().max(min_ready);
            let pick = self
                .queue
                .iter()
                .enumerate()
                .filter(|(_, p)| p.ready <= horizon)
                .min_by_key(|(_, p)| (p.finish_tag, p.seq))
                .map(|(i, _)| i)
                .unwrap_or(0); // min_ready guarantees one eligible
            let p = self.queue.swap_remove(pick);
            self.virtual_time = self.virtual_time.max(p.start_tag);
            let transfer = self.link.transfer(p.ready.max(horizon), p.bytes);
            out.push(Served { seq: p.seq, flow: p.flow, transfer });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ys_simcore::time::{Bandwidth, SimDuration};

    fn spec() -> LinkSpec {
        LinkSpec::new(Bandwidth::from_gbit_per_sec(8), SimDuration::ZERO, SimDuration::ZERO)
    }

    #[test]
    fn single_flow_matches_plain_fifo_link() {
        let mut port = FairPort::new(spec());
        let mut link = Link::new(spec());
        for i in 0..10u64 {
            port.enqueue(7, SimTime(i * 1_000), 64 * 1024);
        }
        let served = port.service();
        for (i, s) in served.iter().enumerate() {
            let t = link.transfer(SimTime(i as u64 * 1_000), 64 * 1024);
            assert_eq!(s.transfer, t, "message {i}");
        }
    }

    #[test]
    fn weights_divide_bandwidth_among_backlogged_flows() {
        let mut port = FairPort::new(spec());
        port.set_weight(1, 3);
        port.set_weight(2, 1);
        for _ in 0..40 {
            port.enqueue(1, SimTime::ZERO, 64 * 1024);
            port.enqueue(2, SimTime::ZERO, 64 * 1024);
        }
        let served = port.service();
        // In the first 20 services, flow 1 (weight 3) should get ~3× the
        // slots of flow 2 (weight 1).
        let head = &served[..20];
        let f1 = head.iter().filter(|s| s.flow == 1).count();
        let f2 = head.iter().filter(|s| s.flow == 2).count();
        assert!(f1 >= 2 * f2, "weighted share violated: {f1} vs {f2}");
        assert!(f2 >= 1, "low-weight flow must not starve");
    }

    #[test]
    fn light_flow_is_isolated_from_a_flood() {
        // A hog queues 64 MiB before a light flow's single 64 KiB message
        // becomes ready. FIFO would make the light message wait for the
        // whole flood; fair queueing serves it almost immediately.
        let hog_msg = 64 * 1024u64;
        let mut fair = FairPort::new(spec());
        let mut fifo = Link::new(spec());
        for i in 0..1024u64 {
            fair.enqueue(1, SimTime(i), hog_msg);
            fifo.transfer(SimTime(i), hog_msg);
        }
        fair.enqueue(2, SimTime(2_000), 64 * 1024);
        let fifo_t = fifo.transfer(SimTime(2_000), 64 * 1024);
        let served = fair.service();
        let light = served
            .iter()
            .find(|s| s.flow == 2)
            .expect("light flow served");
        let fair_wait = light.transfer.arrival.since(SimTime(2_000));
        let fifo_wait = fifo_t.arrival.since(SimTime(2_000));
        assert!(
            fair_wait.nanos() * 50 < fifo_wait.nanos(),
            "fair {fair_wait:?} vs fifo {fifo_wait:?}"
        );
    }

    #[test]
    fn service_is_work_conserving_and_deterministic() {
        let build = || {
            let mut p = FairPort::new(spec());
            p.set_weight(0, 2);
            for i in 0..32u64 {
                p.enqueue((i % 3) as u32, SimTime(i * 500), 4096 + i * 13);
            }
            p.service()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b, "identical inputs must serve identically");
        // Work conservation: the port never idles while a message is ready.
        let total: u64 = a.iter().map(|s| s.transfer.serialized.since(s.transfer.start).nanos()).sum();
        let makespan = a.iter().map(|s| s.transfer.serialized).max().unwrap();
        assert!(total <= makespan.0, "busy time exceeds makespan");
    }
}

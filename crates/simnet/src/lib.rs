//! `ys-simnet` — network substrate: links, switched fabrics, shared buses,
//! and the era link-rate catalog.
//!
//! The paper's performance claims (Figure 1 striping, §2 scalability, §7
//! geographic access) are all statements about *which serialization resource
//! a transfer waits on*. This crate provides exactly those resources as
//! passive queueing models:
//!
//! * [`link::Link`] — FIFO serialization + propagation;
//! * [`fabric::Fabric`] — non-blocking crossbar, contention at ports;
//! * [`fabric::SharedBus`] — a single shared serialization point (PCI-X);
//! * [`sched::FairPort`] — weighted-fair queueing in front of a shared
//!   port, the building block for multi-tenant QoS (`ys-qos`);
//! * [`catalog`] — FC 1/2 Gb/s, GbE, 10 GbE, PCI-X, OC-48/192/768, WAN.
//!
//! Orchestration (who sends what when) lives in `ys-core`; these models just
//! answer "when does it arrive".

pub mod catalog;
pub mod fabric;
pub mod link;
pub mod sched;

pub use fabric::{Fabric, PortId, SharedBus};
pub use link::{frames, path_transfer, DuplexLink, Link, LinkSpec, Transfer};
pub use sched::{FairPort, Served};

//! Switched fabric model.
//!
//! A [`Fabric`] connects N endpoints through a non-blocking crossbar — the
//! standard assumption for the FC and Ethernet switches of the paper's era —
//! so contention arises only at endpoint ports: a message reserves the
//! sender's egress port and the receiver's ingress port in FIFO order.
//! A [`SharedBus`] models the opposite extreme: one serialization resource
//! shared by all parties (the blades' common PCI-X bus of §2.3).

use crate::link::{frames, Link, LinkSpec, Transfer};
use ys_simcore::time::{SimDuration, SimTime};

/// Endpoint index within a fabric.
pub type PortId = usize;

/// A non-blocking switched fabric with per-endpoint duplex ports.
#[derive(Clone, Debug)]
pub struct Fabric {
    egress: Vec<Link>,
    ingress: Vec<Link>,
    /// Extra transit delay through the switch core.
    core_delay: SimDuration,
}

impl Fabric {
    pub fn new(ports: usize, spec: LinkSpec) -> Fabric {
        Fabric {
            egress: (0..ports).map(|_| Link::new(spec)).collect(),
            ingress: (0..ports).map(|_| Link::new(spec)).collect(),
            core_delay: SimDuration::from_nanos(400),
        }
    }

    pub fn ports(&self) -> usize {
        self.egress.len()
    }

    /// Send one message. Reserves `from`'s egress, transits the core, then
    /// reserves `to`'s ingress.
    pub fn send(&mut self, now: SimTime, from: PortId, to: PortId, bytes: u64) -> Transfer {
        let out = self.egress[from].transfer(now, bytes);
        let at_core = out.arrival + self.core_delay;
        let inn = self.ingress[to].transfer(at_core, bytes);
        Transfer { start: out.start, serialized: inn.serialized, arrival: inn.arrival }
    }

    /// Send a large payload as pipelined frames; returns last-byte arrival.
    pub fn send_framed(&mut self, now: SimTime, from: PortId, to: PortId, bytes: u64, frame: u64) -> Transfer {
        let mut first: Option<SimTime> = None;
        let mut last = Transfer { start: now, serialized: now, arrival: now };
        for fr in frames(bytes.max(1), frame) {
            let t = self.send(now, from, to, fr);
            first.get_or_insert(t.start);
            last = t;
        }
        Transfer { start: first.unwrap_or(now), serialized: last.serialized, arrival: last.arrival }
    }

    pub fn egress_utilization(&self, port: PortId, until: SimTime) -> f64 {
        self.egress[port].utilization(until)
    }

    pub fn ingress_utilization(&self, port: PortId, until: SimTime) -> f64 {
        self.ingress[port].utilization(until)
    }

    pub fn egress_bytes(&self, port: PortId) -> u64 {
        self.egress[port].bytes()
    }

    pub fn ingress_bytes(&self, port: PortId) -> u64 {
        self.ingress[port].bytes()
    }

    /// Earliest time `from` could begin a new send.
    pub fn next_free(&self, from: PortId) -> SimTime {
        self.egress[from].next_free()
    }

    /// Enable transfer tracing on every port. Egress port *p* gets lane
    /// `lane_base + 2p`, its ingress twin `lane_base + 2p + 1`.
    pub fn enable_trace(&mut self, lane_base: u32, capacity_per_port: usize) {
        for (p, l) in self.egress.iter_mut().enumerate() {
            l.enable_trace(lane_base + 2 * p as u32, capacity_per_port);
        }
        for (p, l) in self.ingress.iter_mut().enumerate() {
            l.enable_trace(lane_base + 2 * p as u32 + 1, capacity_per_port);
        }
    }

    /// Drain trace spans from every port (oldest→newest per port), plus the
    /// total number of events the port rings dropped.
    pub fn take_trace(&mut self) -> (Vec<ys_simcore::SpanEvent>, u64) {
        let mut events = Vec::new();
        let mut dropped = 0;
        for l in self.egress.iter_mut().chain(self.ingress.iter_mut()) {
            dropped += l.trace().dropped();
            events.extend(l.trace_mut().take());
        }
        (events, dropped)
    }
}

/// One serialization resource shared by every attached party.
#[derive(Clone, Debug)]
pub struct SharedBus {
    link: Link,
}

impl SharedBus {
    pub fn new(spec: LinkSpec) -> SharedBus {
        SharedBus { link: Link::new(spec) }
    }

    pub fn transfer(&mut self, now: SimTime, bytes: u64) -> Transfer {
        self.link.transfer(now, bytes)
    }

    pub fn utilization(&self, until: SimTime) -> f64 {
        self.link.utilization(until)
    }

    pub fn bytes(&self) -> u64 {
        self.link.bytes()
    }

    pub fn next_free(&self) -> SimTime {
        self.link.next_free()
    }

    /// Enable transfer tracing on the shared serialization resource.
    pub fn enable_trace(&mut self, lane: u32, capacity: usize) {
        self.link.enable_trace(lane, capacity);
    }

    /// The underlying link, for trace collection.
    pub fn link(&self) -> &Link {
        &self.link
    }

    pub fn link_mut(&mut self) -> &mut Link {
        &mut self.link
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn disjoint_pairs_do_not_contend() {
        let mut f = Fabric::new(4, catalog::fibre_channel_2g());
        let a = f.send(SimTime::ZERO, 0, 1, 1 << 20);
        let b = f.send(SimTime::ZERO, 2, 3, 1 << 20);
        assert_eq!(a.start, SimTime::ZERO);
        assert_eq!(b.start, SimTime::ZERO, "crossbar is non-blocking");
        assert_eq!(a.arrival, b.arrival);
    }

    #[test]
    fn shared_destination_port_serializes() {
        let mut f = Fabric::new(4, catalog::fibre_channel_2g());
        let a = f.send(SimTime::ZERO, 0, 3, 1 << 20);
        let b = f.send(SimTime::ZERO, 1, 3, 1 << 20);
        assert!(b.arrival > a.arrival, "ingress port 3 is the contention point");
        // The two payloads arrive roughly back-to-back at port 3.
        let gap = b.arrival.since(a.arrival);
        let serialize = catalog::fibre_channel_2g().bandwidth.transfer_time(1 << 20);
        assert!(gap >= serialize);
    }

    #[test]
    fn shared_source_port_serializes() {
        let mut f = Fabric::new(4, catalog::fibre_channel_2g());
        let spec = catalog::fibre_channel_2g();
        let a = f.send(SimTime::ZERO, 0, 1, 1 << 20);
        let b = f.send(SimTime::ZERO, 0, 2, 1 << 20);
        // b queues behind a on egress port 0: starts when a's egress
        // serialization (per-message overhead + wire time) completes.
        let a_egress_done = SimTime::ZERO + spec.per_message + spec.bandwidth.transfer_time(1 << 20);
        assert_eq!(b.start, a_egress_done, "egress 0 is FIFO");
        assert!(a.start < b.start);
    }

    #[test]
    fn framed_send_tracks_totals() {
        let mut f = Fabric::new(2, catalog::ten_gigabit_ethernet());
        let t = f.send_framed(SimTime::ZERO, 0, 1, 10_000_000, 64 * 1024);
        assert!(t.arrival > SimTime::ZERO);
        assert_eq!(f.egress_bytes(0), 10_000_000);
        assert_eq!(f.ingress_bytes(1), 10_000_000);
        // ~8 ms serialization at 10 Gb/s
        let ms = t.total(SimTime::ZERO).as_millis_f64();
        assert!(ms > 7.9 && ms < 9.5, "{ms} ms");
    }

    #[test]
    fn bus_contention_halves_per_party_rate() {
        let mut bus = SharedBus::new(catalog::pci_x_bus());
        let a = bus.transfer(SimTime::ZERO, 1_000_000);
        let b = bus.transfer(SimTime::ZERO, 1_000_000);
        assert_eq!(b.start, a.serialized);
        assert!(bus.utilization(b.serialized) > 0.99);
    }
}

//! Point-to-point link model.
//!
//! A [`Link`] is a FIFO serialization resource with a bandwidth, a
//! propagation delay, and a fixed per-message overhead (framing, protocol
//! processing). `transfer` answers the only question the simulation asks:
//! *given the link's queue, when does this message start, finish
//! serializing, and arrive at the far end?*
//!
//! Large streams are pipelined by chunking them into frames (see
//! [`frames`]); per-frame store-and-forward then reproduces cut-through
//! behaviour at frame granularity, which is how the real fabrics the paper
//! cites (Fibre Channel, Ethernet) behave.

use ys_simcore::time::{Bandwidth, SimDuration, SimTime};
use ys_simcore::SpanRecorder;

/// Immutable description of a link's performance envelope.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkSpec {
    pub bandwidth: Bandwidth,
    /// One-way propagation delay (speed-of-light + switch transit).
    pub propagation: SimDuration,
    /// Fixed cost charged per message (framing, interrupt, protocol stack).
    pub per_message: SimDuration,
}

impl LinkSpec {
    pub const fn new(bandwidth: Bandwidth, propagation: SimDuration, per_message: SimDuration) -> LinkSpec {
        LinkSpec { bandwidth, propagation, per_message }
    }

    /// Unloaded one-way latency for a message of `bytes`.
    pub fn unloaded_latency(&self, bytes: u64) -> SimDuration {
        self.per_message + self.bandwidth.transfer_time(bytes) + self.propagation
    }
}

/// Completed reservation on a link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Transfer {
    /// When the message began serializing (after queueing).
    pub start: SimTime,
    /// When the last bit left the sender.
    pub serialized: SimTime,
    /// When the last bit arrived at the receiver.
    pub arrival: SimTime,
}

impl Transfer {
    pub fn queue_delay(&self, submitted: SimTime) -> SimDuration {
        self.start.since(submitted)
    }

    pub fn total(&self, submitted: SimTime) -> SimDuration {
        self.arrival.since(submitted)
    }
}

/// A unidirectional FIFO link.
#[derive(Clone, Debug)]
pub struct Link {
    spec: LinkSpec,
    busy_until: SimTime,
    busy_time: SimDuration,
    first_use: Option<SimTime>,
    messages: u64,
    bytes: u64,
    trace: SpanRecorder,
    lane: u32,
}

impl Link {
    pub fn new(spec: LinkSpec) -> Link {
        Link {
            spec,
            busy_until: SimTime::ZERO,
            busy_time: SimDuration::ZERO,
            first_use: None,
            messages: 0,
            bytes: 0,
            trace: SpanRecorder::disabled(),
            lane: 0,
        }
    }

    pub fn spec(&self) -> LinkSpec {
        self.spec
    }

    /// Enable structured tracing of transfers on this link, labelling its
    /// events with `lane` (a port / blade / hop index for chrome://tracing).
    pub fn enable_trace(&mut self, lane: u32, capacity: usize) {
        self.lane = lane;
        self.trace.enable(capacity);
    }

    /// Structured trace of transfer spans (disabled by default).
    pub fn trace(&self) -> &SpanRecorder {
        &self.trace
    }

    pub fn trace_mut(&mut self) -> &mut SpanRecorder {
        &mut self.trace
    }

    /// Earliest instant a new message submitted now could begin serializing.
    pub fn next_free(&self) -> SimTime {
        self.busy_until
    }

    /// Reserve the link for a message of `bytes` submitted at `now`.
    pub fn transfer(&mut self, now: SimTime, bytes: u64) -> Transfer {
        let start = now.max(self.busy_until);
        let serialize = self.spec.per_message + self.spec.bandwidth.transfer_time(bytes);
        let serialized = start + serialize;
        self.busy_until = serialized;
        self.busy_time += serialize;
        self.first_use.get_or_insert(now);
        self.messages += 1;
        self.bytes += bytes;
        self.trace.span_at(start, serialize, "simnet", "xfer", self.lane, bytes, self.messages);
        Transfer { start, serialized, arrival: serialized + self.spec.propagation }
    }

    /// Fraction of time the link was serializing, measured from first use to `until`.
    pub fn utilization(&self, until: SimTime) -> f64 {
        match self.first_use {
            None => 0.0,
            Some(first) => {
                let span = until.since(first);
                if span.is_zero() {
                    0.0
                } else {
                    (self.busy_time.as_secs_f64() / span.as_secs_f64()).min(1.0)
                }
            }
        }
    }

    pub fn messages(&self) -> u64 {
        self.messages
    }

    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

/// A full-duplex link: independent FIFO resources per direction.
#[derive(Clone, Debug)]
pub struct DuplexLink {
    pub forward: Link,
    pub reverse: Link,
}

impl DuplexLink {
    pub fn new(spec: LinkSpec) -> DuplexLink {
        DuplexLink { forward: Link::new(spec), reverse: Link::new(spec) }
    }
}

/// Split a transfer of `total` bytes into frames of at most `frame` bytes.
/// The final frame carries the remainder.
pub fn frames(total: u64, frame: u64) -> impl Iterator<Item = u64> {
    assert!(frame > 0, "frame size must be positive");
    let full = total / frame;
    let rem = total % frame;
    (0..full).map(move |_| frame).chain((rem > 0).then_some(rem))
}

/// A multi-hop path: per-frame store-and-forward over each hop in order.
///
/// Returns the arrival of the last frame at the final hop. Because frames
/// pipeline (frame *k+1* serializes on hop 0 while frame *k* serializes on
/// hop 1), a long transfer's rate converges to the bottleneck link rate.
pub fn path_transfer(links: &mut [&mut Link], now: SimTime, bytes: u64, frame: u64) -> Transfer {
    assert!(!links.is_empty(), "path needs at least one hop");
    let mut first_start: Option<SimTime> = None;
    let mut last = Transfer { start: now, serialized: now, arrival: now };
    for fr in frames(bytes.max(1), frame) {
        let mut ready = now;
        for link in links.iter_mut() {
            let t = link.transfer(ready, fr);
            ready = t.arrival;
            if first_start.is_none() {
                first_start = Some(t.start);
            }
            last = t;
        }
    }
    Transfer { start: first_start.unwrap_or(now), serialized: last.serialized, arrival: last.arrival }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn fc2() -> LinkSpec {
        catalog::fibre_channel_2g()
    }

    #[test]
    fn unloaded_transfer_matches_spec_math() {
        let mut l = Link::new(LinkSpec::new(
            Bandwidth::from_gbit_per_sec(1),
            SimDuration::from_micros(1),
            SimDuration::from_nanos(500),
        ));
        let t = l.transfer(SimTime::ZERO, 125_000); // 1 ms at 1 Gb/s
        assert_eq!(t.start, SimTime::ZERO);
        assert_eq!(t.serialized, SimTime(500 + 1_000_000));
        assert_eq!(t.arrival, SimTime(500 + 1_000_000 + 1_000));
    }

    #[test]
    fn fifo_queueing_serializes_back_to_back() {
        let mut l = Link::new(fc2());
        let a = l.transfer(SimTime::ZERO, 1 << 20);
        let b = l.transfer(SimTime::ZERO, 1 << 20);
        assert_eq!(b.start, a.serialized, "second message waits for the first");
        let c = l.transfer(b.serialized + SimDuration::from_secs(1), 1024);
        assert_eq!(c.queue_delay(b.serialized + SimDuration::from_secs(1)), SimDuration::ZERO);
    }

    #[test]
    fn utilization_reflects_busy_fraction() {
        let spec = LinkSpec::new(Bandwidth::from_gbit_per_sec(8), SimDuration::ZERO, SimDuration::ZERO);
        let mut l = Link::new(spec);
        // 1 MB at 8 Gb/s = 1 ms busy.
        l.transfer(SimTime::ZERO, 1_000_000);
        let u = l.utilization(SimTime(2_000_000));
        assert!((u - 0.5).abs() < 1e-9, "utilization {u}");
        assert_eq!(l.messages(), 1);
        assert_eq!(l.bytes(), 1_000_000);
    }

    #[test]
    fn frames_cover_total_exactly() {
        let total: u64 = frames(1_000_001, 64 * 1024).sum();
        assert_eq!(total, 1_000_001);
        assert_eq!(frames(0, 1024).count(), 0);
        assert_eq!(frames(1024, 1024).count(), 1);
        assert_eq!(frames(1025, 1024).count(), 2);
    }

    #[test]
    fn path_pipelines_to_bottleneck_rate() {
        // 10 MB over two hops: 10 Gb/s then 2 Gb/s. Pipelined time should be
        // close to the 2 Gb/s serialization time (40 ms), far below the
        // store-and-forward-whole-message sum (48 ms).
        let mut a = Link::new(LinkSpec::new(Bandwidth::from_gbit_per_sec(10), SimDuration::ZERO, SimDuration::ZERO));
        let mut b = Link::new(LinkSpec::new(Bandwidth::from_gbit_per_sec(2), SimDuration::ZERO, SimDuration::ZERO));
        let t = path_transfer(&mut [&mut a, &mut b], SimTime::ZERO, 10_000_000, 64 * 1024);
        let ms = t.total(SimTime::ZERO).as_millis_f64();
        assert!(ms < 41.0, "took {ms} ms");
        assert!(ms > 39.9, "took {ms} ms");
    }

    #[test]
    fn path_single_hop_equals_link_transfer() {
        let mut a = Link::new(fc2());
        let mut b = Link::new(fc2());
        let direct = a.transfer(SimTime::ZERO, 4096);
        let via_path = path_transfer(&mut [&mut b], SimTime::ZERO, 4096, 1 << 20);
        assert_eq!(direct.arrival, via_path.arrival);
    }

    #[test]
    fn duplex_directions_are_independent() {
        let mut d = DuplexLink::new(fc2());
        let f = d.forward.transfer(SimTime::ZERO, 1 << 20);
        let r = d.reverse.transfer(SimTime::ZERO, 1 << 20);
        assert_eq!(f.start, SimTime::ZERO);
        assert_eq!(r.start, SimTime::ZERO, "reverse direction does not queue behind forward");
    }
}

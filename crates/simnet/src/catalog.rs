//! Catalog of the link technologies the paper names, with era-appropriate
//! (c. 2001) rates and overheads.
//!
//! | Technology | Rate | Where the paper uses it |
//! |---|---|---|
//! | Fibre Channel 1 Gb/s | 1 Gb/s | legacy disk-side fabric (§2.3) |
//! | Fibre Channel 2 Gb/s | 2 Gb/s | blade disk/host ports (§2.3, §8) |
//! | Gigabit Ethernet | 1 Gb/s | management / NAS access |
//! | 10 Gigabit Ethernet | 10 Gb/s | the high-speed stream port (Fig. 1) |
//! | PCI-X bus | 8.5 Gb/s | blades sharing the high-speed port (§2.3) |
//! | OC-48 / OC-192 / OC-768 | 2.5 / 10 / 40 Gb/s | WAN backbones (§2) |

use crate::link::LinkSpec;
use ys_simcore::time::{Bandwidth, SimDuration};

/// Fibre Channel payload efficiency is high; we charge a small fixed
/// per-frame cost instead of shaving the rate.
const FC_PER_MSG: SimDuration = SimDuration::from_nanos(700);
const ETH_PER_MSG: SimDuration = SimDuration::from_nanos(1200);
/// Intra-datacenter propagation: a few tens of metres of fibre + switch.
const LOCAL_PROP: SimDuration = SimDuration::from_nanos(800);

pub fn fibre_channel_1g() -> LinkSpec {
    LinkSpec::new(Bandwidth::from_gbit_per_sec(1), LOCAL_PROP, FC_PER_MSG)
}

pub fn fibre_channel_2g() -> LinkSpec {
    LinkSpec::new(Bandwidth::from_gbit_per_sec(2), LOCAL_PROP, FC_PER_MSG)
}

pub fn gigabit_ethernet() -> LinkSpec {
    LinkSpec::new(Bandwidth::from_gbit_per_sec(1), LOCAL_PROP, ETH_PER_MSG)
}

pub fn ten_gigabit_ethernet() -> LinkSpec {
    LinkSpec::new(Bandwidth::from_gbit_per_sec(10), LOCAL_PROP, ETH_PER_MSG)
}

/// PCI-X 133 MHz / 64-bit: 1064 MB/s ≈ 8.5 Gb/s. Shared bus — model as one
/// Link contended by everything on the blade shelf (§2.3's "common PCI-X
/// bus" feeding the 10 Gb/s port).
pub fn pci_x_bus() -> LinkSpec {
    LinkSpec::new(Bandwidth::from_mbit_per_sec(8512), SimDuration::from_nanos(120), SimDuration::from_nanos(250))
}

/// PCI-X 266 (DDR): ~17 Gb/s. A 10 GbE port cannot be driven through the
/// 8.5 Gb/s PCI-X 133 variant, so the high-speed port card the paper
/// sketches implies this faster bus.
pub fn pci_x_266_bus() -> LinkSpec {
    LinkSpec::new(Bandwidth::from_mbit_per_sec(17024), SimDuration::from_nanos(120), SimDuration::from_nanos(250))
}

/// Fibre Channel "2 Gb/s" *payload* rate: the line runs at 2.125 Gbaud
/// with 8b/10b coding, leaving ≈ 1.7 Gb/s (200 MB/s) of data — the number
/// that matters when the paper adds blades until a 10 Gb/s stream fills
/// (4 blades × 2 ports × 1.7 Gb/s ≈ 13.6 Gb/s of feed).
pub fn fibre_channel_2g_payload() -> LinkSpec {
    LinkSpec::new(Bandwidth::from_mbit_per_sec(1700), LOCAL_PROP, FC_PER_MSG)
}

pub fn oc48() -> LinkSpec {
    LinkSpec::new(Bandwidth::from_mbit_per_sec(2488), SimDuration::ZERO, ETH_PER_MSG)
}

pub fn oc192() -> LinkSpec {
    LinkSpec::new(Bandwidth::from_mbit_per_sec(9953), SimDuration::ZERO, ETH_PER_MSG)
}

pub fn oc768() -> LinkSpec {
    LinkSpec::new(Bandwidth::from_gbit_per_sec(40), SimDuration::ZERO, ETH_PER_MSG)
}

/// Speed of light in fibre: ~5 microseconds per kilometre, one-way.
pub fn wan_propagation(km: f64) -> SimDuration {
    SimDuration::from_secs_f64(km * 5e-6 / 1e0 * 1e-0 * 1e-0 * 1e-0)
}

/// A WAN path: an OC-class trunk plus distance-derived propagation.
pub fn wan(trunk: LinkSpec, km: f64) -> LinkSpec {
    LinkSpec::new(trunk.bandwidth, trunk.propagation + wan_propagation(km), trunk.per_message)
}

/// Dark-fibre metro link (paper §7): full trunk rate, short distance.
pub fn dark_fibre(km: f64) -> LinkSpec {
    wan(oc768(), km)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_match_the_paper() {
        assert_eq!(fibre_channel_2g().bandwidth.bits_per_sec(), 2_000_000_000);
        assert_eq!(ten_gigabit_ethernet().bandwidth.bits_per_sec(), 10_000_000_000);
        assert_eq!(oc768().bandwidth.bits_per_sec(), 40_000_000_000);
        assert!(pci_x_bus().bandwidth.gbit_per_sec() > 8.0);
        assert!(pci_x_bus().bandwidth.gbit_per_sec() < 9.0);
    }

    #[test]
    fn wan_propagation_scales_with_distance() {
        // 1000 km ≈ 5 ms one-way.
        let p = wan_propagation(1000.0);
        assert!((p.as_millis_f64() - 5.0).abs() < 0.01, "{p:?}");
        let spec = wan(oc192(), 3000.0);
        assert!((spec.propagation.as_millis_f64() - 15.0).abs() < 0.1);
        assert_eq!(spec.bandwidth, oc192().bandwidth);
    }

    #[test]
    fn two_fc2_ports_cannot_saturate_ten_gbe_but_eight_can() {
        // Core arithmetic behind Figure 1: each blade contributes 2×2 Gb/s.
        let per_blade = 2.0 * fibre_channel_2g().bandwidth.gbit_per_sec();
        assert!(per_blade * 2.0 < 10.0);
        assert!(per_blade * 4.0 >= 10.0 * 0.8, "4 blades reach the high-speed port's neighbourhood");
    }
}

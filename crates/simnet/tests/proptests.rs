//! Property tests for the network substrate: FIFO conservation laws that
//! must hold for any message sequence.

use proptest::prelude::*;
use ys_simcore::time::{Bandwidth, SimDuration, SimTime};
use ys_simnet::{frames, Fabric, Link, LinkSpec};

fn spec(gbps: u64, prop_us: u64, per_msg_ns: u64) -> LinkSpec {
    LinkSpec::new(
        Bandwidth::from_gbit_per_sec(gbps),
        SimDuration::from_micros(prop_us),
        SimDuration::from_nanos(per_msg_ns),
    )
}

proptest! {
    /// A link never reorders: arrivals are non-decreasing for any
    /// submission pattern, and every transfer starts no earlier than
    /// submitted.
    #[test]
    fn link_is_fifo_and_causal(
        msgs in proptest::collection::vec((0u64..1_000_000, 1u64..1_000_000), 1..100),
        gbps in 1u64..40,
    ) {
        let mut link = Link::new(spec(gbps, 5, 500));
        let mut last_arrival = SimTime::ZERO;
        let mut clock = 0u64;
        for (gap, bytes) in msgs {
            clock += gap;
            let t = link.transfer(SimTime(clock), bytes);
            prop_assert!(t.start >= SimTime(clock), "started before submission");
            prop_assert!(t.serialized > t.start);
            prop_assert!(t.arrival >= t.serialized);
            prop_assert!(t.arrival >= last_arrival, "reordered delivery");
            last_arrival = t.arrival;
        }
    }

    /// Total busy time equals the sum of serialization times: utilization
    /// accounting never invents or loses time.
    #[test]
    fn utilization_conserves_time(
        sizes in proptest::collection::vec(1u64..10_000_000, 1..50),
        gbps in 1u64..40,
    ) {
        let s = spec(gbps, 0, 0);
        let mut link = Link::new(s);
        let mut expected_busy = SimDuration::ZERO;
        let mut last = SimTime::ZERO;
        for bytes in &sizes {
            let t = link.transfer(SimTime::ZERO, *bytes);
            expected_busy += s.bandwidth.transfer_time(*bytes);
            last = t.serialized;
        }
        // Back-to-back: serialization window == sum of transfer times.
        prop_assert_eq!(last.nanos(), expected_busy.nanos());
        let u = link.utilization(last);
        prop_assert!((u - 1.0).abs() < 1e-9, "back-to-back link must be 100% busy, got {u}");
    }

    /// frames() tiles any total exactly, with every frame ≤ frame size.
    #[test]
    fn frames_tile_exactly(total in 0u64..100_000_000, frame in 1u64..10_000_000) {
        let mut sum = 0u64;
        let mut count = 0u64;
        for f in frames(total, frame) {
            prop_assert!(f > 0 && f <= frame);
            sum += f;
            count += 1;
        }
        prop_assert_eq!(sum, total);
        prop_assert_eq!(count, total.div_ceil(frame));
    }

    /// Fabric conservation: bytes leaving egress ports equal bytes entering
    /// ingress ports, for any traffic matrix.
    #[test]
    fn fabric_conserves_bytes(
        sends in proptest::collection::vec((0usize..6, 0usize..6, 1u64..1_000_000), 1..60),
    ) {
        let mut f = Fabric::new(6, spec(2, 1, 700));
        let mut sent = 0u64;
        for (from, to, bytes) in sends {
            f.send(SimTime::ZERO, from, to, bytes);
            sent += bytes;
        }
        let egress: u64 = (0..6).map(|p| f.egress_bytes(p)).sum();
        let ingress: u64 = (0..6).map(|p| f.ingress_bytes(p)).sum();
        prop_assert_eq!(egress, sent);
        prop_assert_eq!(ingress, sent);
    }

    /// Unloaded latency is monotone in bytes and in propagation distance.
    #[test]
    fn unloaded_latency_monotone(bytes_a in 0u64..10_000_000, extra in 1u64..10_000_000, km in 0u64..10_000) {
        use ys_simnet::catalog;
        let near = catalog::wan(catalog::oc192(), km as f64);
        let far = catalog::wan(catalog::oc192(), (km + 100) as f64);
        prop_assert!(near.unloaded_latency(bytes_a) <= near.unloaded_latency(bytes_a + extra));
        prop_assert!(near.unloaded_latency(bytes_a) < far.unloaded_latency(bytes_a));
    }
}

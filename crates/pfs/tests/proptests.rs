//! Property tests for the PFS: the namespace behaves like a model map of
//! paths, and extent allocation never double-books backing space.

use proptest::prelude::*;
use std::collections::HashMap;
use ys_pfs::{FileSystem, FsError};
use ys_virt::VolumeId;

fn fs() -> FileSystem {
    FileSystem::new(vec![VolumeId(0), VolumeId(1), VolumeId(2)], 1 << 20)
}

#[derive(Clone, Debug)]
enum NsOp {
    Create(u8),
    Remove(u8),
    Rename(u8, u8),
}

fn ns_op() -> impl Strategy<Value = NsOp> {
    prop_oneof![
        any::<u8>().prop_map(NsOp::Create),
        any::<u8>().prop_map(NsOp::Remove),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| NsOp::Rename(a, b)),
    ]
}

fn path(n: u8) -> String {
    format!("/f{}", n % 24)
}

proptest! {
    /// The namespace under create/remove/rename matches a model HashMap for
    /// every operation outcome and final state.
    #[test]
    fn namespace_matches_model(ops in proptest::collection::vec(ns_op(), 1..120)) {
        let mut f = fs();
        let mut model: HashMap<String, ()> = HashMap::new();
        for op in ops {
            match op {
                NsOp::Create(n) => {
                    let p = path(n);
                    let r = f.create(&p, None);
                    if let std::collections::hash_map::Entry::Vacant(e) = model.entry(p) {
                        prop_assert!(r.is_ok());
                        e.insert(());
                    } else {
                        prop_assert!(matches!(r, Err(FsError::AlreadyExists(_))));
                    }
                }
                NsOp::Remove(n) => {
                    let p = path(n);
                    let r = f.unlink(&p);
                    prop_assert_eq!(r.is_ok(), model.remove(&p).is_some());
                }
                NsOp::Rename(a, b) => {
                    let (pa, pb) = (path(a), path(b));
                    let r = f.rename(&pa, &pb);
                    let ok = model.contains_key(&pa) && !model.contains_key(&pb) && pa != pb;
                    prop_assert_eq!(r.is_ok(), ok, "rename {} -> {}", pa, pb);
                    if ok {
                        model.remove(&pa);
                        model.insert(pb, ());
                    }
                }
            }
        }
        // Final listing agrees.
        let mut listed = f.readdir("/").unwrap();
        listed.sort();
        let mut expect: Vec<String> = model.keys().map(|p| p.trim_start_matches('/').to_string()).collect();
        expect.sort();
        prop_assert_eq!(listed, expect);
    }

    /// Backing extents never overlap across files or within a file: every
    /// (volume, offset) byte is owned by at most one file chunk.
    #[test]
    fn extents_never_double_book(
        writes in proptest::collection::vec((0u8..6, 0u64..64, 1u64..4), 1..60),
    ) {
        let mut f = fs();
        let unit = f.stripe_unit();
        let mut inos = HashMap::new();
        let mut owned: HashMap<(u32, u64), (u8, u64)> = HashMap::new(); // (vol, voff-chunk) -> (file, chunk)
        for (file, chunk, nchunks) in writes {
            let ino = *inos.entry(file).or_insert_with(|| f.create(&format!("/file{file}"), None).unwrap());
            let extents = f.write(ino, chunk * unit, nchunks * unit).unwrap();
            for e in extents {
                prop_assert_eq!(e.voff % unit, 0, "allocation is unit-aligned");
                let fchunk = e.voff / unit;
                let key = (e.vol.0, fchunk);
                let claim = (file, chunk);
                if let Some(&prev) = owned.get(&key) {
                    // Re-writing the same file chunk must reuse the same backing.
                    prop_assert_eq!(prev.0, claim.0, "backing shared across files");
                } else {
                    owned.insert(key, claim);
                }
            }
        }
    }

    /// size is the high-water mark of writes, and reads resolve exactly the
    /// written backing.
    #[test]
    fn size_is_high_water_mark(writes in proptest::collection::vec((0u64..100_000_000, 1u64..5_000_000), 1..30)) {
        let mut f = fs();
        let ino = f.create("/w", None).unwrap();
        let mut hwm = 0u64;
        for (off, len) in writes {
            let w = f.write(ino, off, len).unwrap();
            hwm = hwm.max(off + len);
            prop_assert_eq!(f.size_of(ino), Some(hwm));
            let r = f.read(ino, off, len).unwrap();
            prop_assert_eq!(w, r, "read must resolve to the written backing");
        }
    }
}

//! Extended per-file metadata policies (§4).
//!
//! "Metadata can be extended to allow a variety of behaviors to be
//! dynamically set on a file by file basis, rather than on a
//! volume-by-volume basis."

use ys_cache::Retention;
use ys_raid::RaidLevel;

/// How geographic replication of a file behaves (§6.2, §7.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GeoMode {
    /// Host write acks only after remote sites persist (zero loss window).
    Synchronous,
    /// Write-ordered background shipping (bounded loss window).
    Asynchronous,
    /// Not replicated off-site.
    None,
}

/// Geographic replication policy for a file.
#[derive(Clone, Debug, PartialEq)]
pub struct GeoPolicy {
    pub mode: GeoMode,
    /// Number of sites that must hold the file (including its home site).
    pub site_copies: usize,
    /// Minimum distance (km) between the home site and at least one replica
    /// — "users could specify ... the minimum distance".
    pub min_distance_km: f64,
    /// Pin replication to specific sites (site indices), if non-empty.
    pub preferred_sites: Vec<usize>,
}

impl GeoPolicy {
    pub fn none() -> GeoPolicy {
        GeoPolicy { mode: GeoMode::None, site_copies: 1, min_distance_km: 0.0, preferred_sites: vec![] }
    }

    pub fn sync(site_copies: usize) -> GeoPolicy {
        GeoPolicy { mode: GeoMode::Synchronous, site_copies, min_distance_km: 0.0, preferred_sites: vec![] }
    }

    pub fn async_(site_copies: usize) -> GeoPolicy {
        GeoPolicy { mode: GeoMode::Asynchronous, site_copies, min_distance_km: 0.0, preferred_sites: vec![] }
    }
}

/// The full per-file policy record (§4's bullet list, one field each).
#[derive(Clone, Debug, PartialEq)]
pub struct FilePolicy {
    /// Cache retention priority override.
    pub retention: Retention,
    /// Geographic replication.
    pub geo: GeoPolicy,
    /// RAID class override ("override the automatic selection of RAID type").
    pub raid: Option<RaidLevel>,
    /// Controller-level fault tolerance for write-back: total dirty copies
    /// held in blade caches before the host write is acked (§6.1 N-way).
    pub write_back_copies: usize,
}

impl Default for FilePolicy {
    fn default() -> FilePolicy {
        FilePolicy {
            retention: Retention::Normal,
            geo: GeoPolicy::none(),
            raid: None,
            write_back_copies: 2,
        }
    }
}

impl FilePolicy {
    /// Policy for throwaway data: minimal protection, evict first.
    pub fn scratch() -> FilePolicy {
        FilePolicy {
            retention: Retention::Low,
            geo: GeoPolicy::none(),
            raid: Some(RaidLevel::Raid0),
            write_back_copies: 1,
        }
    }

    /// Policy for critical data: pinned hot, synchronously replicated to 2
    /// sites, RAID6, triple write-back copies.
    pub fn critical() -> FilePolicy {
        FilePolicy {
            retention: Retention::High,
            geo: GeoPolicy::sync(2),
            raid: Some(RaidLevel::Raid6),
            write_back_copies: 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_sane() {
        let p = FilePolicy::default();
        assert_eq!(p.retention, Retention::Normal);
        assert_eq!(p.geo.mode, GeoMode::None);
        assert_eq!(p.write_back_copies, 2, "classic dual-controller default");
        assert!(p.raid.is_none(), "RAID class chosen automatically");
    }

    #[test]
    fn presets_differ_along_every_axis() {
        let s = FilePolicy::scratch();
        let c = FilePolicy::critical();
        assert!(s.retention < c.retention);
        assert!(s.write_back_copies < c.write_back_copies);
        assert_eq!(c.geo.mode, GeoMode::Synchronous);
        assert_eq!(c.geo.site_copies, 2);
    }
}

//! `ys-pfs` — the parallel file system integrated into the storage system
//! (§4): a namespace whose files stripe across pool volumes and carry
//! per-file **extended metadata policies** — cache retention, geographic
//! replication (sync/async, site count, distances), RAID class, and
//! write-back fault-tolerance level.
//!
//! * [`policy`] — [`FilePolicy`] / [`GeoPolicy`], the §4 metadata record;
//! * [`fs`] — [`FileSystem`]: paths, directories, striped extent
//!   allocation over DMSD volumes, policy inheritance and live re-policy.

pub mod fs;
pub mod policy;

pub use fs::{FileExtent, FileSystem, FsError, Ino, Stat, ROOT};
pub use policy::{FilePolicy, GeoMode, GeoPolicy};

//! The parallel file system: a POSIX-ish namespace whose files stripe
//! across the pool's virtual volumes and carry per-file policies (§4).
//!
//! The PFS maps file byte ranges to (volume, offset) ranges; actual block
//! I/O, caching, and replication happen in the layers below. Backing
//! volumes are DMSDs, so the simple bump allocator per volume costs nothing
//! until data is written, and deleting a file UNMAPs its ranges (the
//! integration point with §3's free-on-unuse).

use crate::policy::FilePolicy;
use std::collections::{BTreeMap, HashMap};
use ys_virt::VolumeId;

/// Inode number.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Ino(pub u64);

/// A file extent: `len` bytes at `voff` within volume `vol`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FileExtent {
    pub vol: VolumeId,
    pub voff: u64,
    pub len: u64,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum NodeKind {
    File {
        size: u64,
        /// file offset → extent
        extents: BTreeMap<u64, FileExtent>,
    },
    Dir {
        children: HashMap<String, Ino>,
    },
}

#[derive(Clone, Debug)]
struct Node {
    kind: NodeKind,
    policy: FilePolicy,
    parent: Ino,
}

/// File-system errors.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FsError {
    NotFound(String),
    AlreadyExists(String),
    NotADirectory(String),
    NotAFile(String),
    DirectoryNotEmpty(String),
    InvalidPath(String),
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "not found: {p}"),
            FsError::AlreadyExists(p) => write!(f, "already exists: {p}"),
            FsError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            FsError::NotAFile(p) => write!(f, "not a file: {p}"),
            FsError::DirectoryNotEmpty(p) => write!(f, "directory not empty: {p}"),
            FsError::InvalidPath(p) => write!(f, "invalid path: {p}"),
        }
    }
}

impl std::error::Error for FsError {}

/// Metadata returned by [`FileSystem::stat`].
#[derive(Clone, Debug, PartialEq)]
pub struct Stat {
    pub ino: Ino,
    pub is_dir: bool,
    pub size: u64,
    pub policy: FilePolicy,
}

/// A storage class: volumes of one RAID personality that files whose
/// policy requests that personality stripe across (§4's "override the
/// automatic selection of RAID type").
#[derive(Clone, Debug)]
struct StorageClass {
    raid: Option<ys_raid::RaidLevel>,
    volumes: Vec<VolumeId>,
    /// Bump cursor per volume (DMSD virtual space is effectively infinite).
    cursors: Vec<u64>,
}

/// The file system.
#[derive(Clone, Debug)]
pub struct FileSystem {
    nodes: HashMap<Ino, Node>,
    next_ino: u64,
    /// Storage classes; class 0 is the default (policy `raid: None`).
    classes: Vec<StorageClass>,
    /// Stripe unit for large files.
    stripe_unit: u64,
}

pub const ROOT: Ino = Ino(0);

impl FileSystem {
    pub fn new(volumes: Vec<VolumeId>, stripe_unit: u64) -> FileSystem {
        assert!(!volumes.is_empty(), "need at least one backing volume");
        assert!(stripe_unit > 0);
        let mut nodes = HashMap::new();
        nodes.insert(
            ROOT,
            Node { kind: NodeKind::Dir { children: HashMap::new() }, policy: FilePolicy::default(), parent: ROOT },
        );
        let n = volumes.len();
        FileSystem {
            nodes,
            next_ino: 1,
            classes: vec![StorageClass { raid: None, volumes, cursors: vec![0; n] }],
            stripe_unit,
        }
    }

    /// Register a storage class backed by `volumes` for files whose policy
    /// demands `raid`. Files without an override stay in class 0.
    pub fn add_storage_class(&mut self, raid: ys_raid::RaidLevel, volumes: Vec<VolumeId>) {
        assert!(!volumes.is_empty());
        let n = volumes.len();
        self.classes.push(StorageClass { raid: Some(raid), volumes, cursors: vec![0; n] });
    }

    /// The class index serving a given RAID request.
    fn class_for(&self, raid: Option<ys_raid::RaidLevel>) -> usize {
        match raid {
            Some(level) => self
                .classes
                .iter()
                .position(|c| c.raid == Some(level))
                .unwrap_or(0),
            None => 0,
        }
    }

    pub fn stripe_unit(&self) -> u64 {
        self.stripe_unit
    }

    pub fn backing_volumes(&self) -> &[VolumeId] {
        &self.classes[0].volumes
    }

    pub fn storage_class_count(&self) -> usize {
        self.classes.len()
    }

    fn alloc_ino(&mut self) -> Ino {
        let ino = Ino(self.next_ino);
        self.next_ino += 1;
        ino
    }

    fn components(path: &str) -> Result<Vec<&str>, FsError> {
        if !path.starts_with('/') {
            return Err(FsError::InvalidPath(path.into()));
        }
        Ok(path.split('/').filter(|c| !c.is_empty()).collect())
    }

    /// Resolve a path to an inode.
    pub fn lookup(&self, path: &str) -> Result<Ino, FsError> {
        let mut cur = ROOT;
        for comp in Self::components(path)? {
            let node = &self.nodes[&cur];
            match &node.kind {
                NodeKind::Dir { children } => {
                    cur = *children.get(comp).ok_or_else(|| FsError::NotFound(path.into()))?;
                }
                NodeKind::File { .. } => return Err(FsError::NotADirectory(path.into())),
            }
        }
        Ok(cur)
    }

    fn split_parent(path: &str) -> Result<(String, String), FsError> {
        let comps = Self::components(path)?;
        let name = comps.last().ok_or_else(|| FsError::InvalidPath(path.into()))?.to_string();
        let parent = if comps.len() == 1 {
            "/".to_string()
        } else {
            format!("/{}", comps[..comps.len() - 1].join("/"))
        };
        Ok((parent, name))
    }

    fn create_node(&mut self, path: &str, kind: NodeKind, policy: Option<FilePolicy>) -> Result<Ino, FsError> {
        let (parent_path, name) = Self::split_parent(path)?;
        let parent = self.lookup(&parent_path)?;
        // Children inherit the parent directory's policy unless overridden.
        let inherited = self.nodes[&parent].policy.clone();
        {
            let pnode = self.nodes.get_mut(&parent).expect("parent exists");
            match &mut pnode.kind {
                NodeKind::Dir { children } => {
                    if children.contains_key(&name) {
                        return Err(FsError::AlreadyExists(path.into()));
                    }
                }
                NodeKind::File { .. } => return Err(FsError::NotADirectory(parent_path)),
            }
        }
        let ino = self.alloc_ino();
        self.nodes.insert(ino, Node { kind, policy: policy.unwrap_or(inherited), parent });
        match &mut self.nodes.get_mut(&parent).expect("parent exists").kind {
            NodeKind::Dir { children } => {
                children.insert(name, ino);
            }
            _ => unreachable!(),
        }
        Ok(ino)
    }

    /// Create an empty file. Policy defaults to the parent directory's.
    pub fn create(&mut self, path: &str, policy: Option<FilePolicy>) -> Result<Ino, FsError> {
        self.create_node(path, NodeKind::File { size: 0, extents: BTreeMap::new() }, policy)
    }

    /// Create a directory.
    pub fn mkdir(&mut self, path: &str, policy: Option<FilePolicy>) -> Result<Ino, FsError> {
        self.create_node(path, NodeKind::Dir { children: HashMap::new() }, policy)
    }

    pub fn stat(&self, path: &str) -> Result<Stat, FsError> {
        let ino = self.lookup(path)?;
        let node = &self.nodes[&ino];
        Ok(match &node.kind {
            NodeKind::File { size, .. } => Stat { ino, is_dir: false, size: *size, policy: node.policy.clone() },
            NodeKind::Dir { .. } => Stat { ino, is_dir: true, size: 0, policy: node.policy.clone() },
        })
    }

    pub fn policy(&self, ino: Ino) -> &FilePolicy {
        &self.nodes[&ino].policy
    }

    /// Change a file's policy at any time — "the file behavior can easily
    /// be changed at any time" (§7.2).
    pub fn set_policy(&mut self, path: &str, policy: FilePolicy) -> Result<(), FsError> {
        let ino = self.lookup(path)?;
        self.nodes.get_mut(&ino).expect("looked up").policy = policy;
        Ok(())
    }

    pub fn readdir(&self, path: &str) -> Result<Vec<String>, FsError> {
        let ino = self.lookup(path)?;
        match &self.nodes[&ino].kind {
            NodeKind::Dir { children } => {
                let mut names: Vec<String> = children.keys().cloned().collect();
                names.sort();
                Ok(names)
            }
            NodeKind::File { .. } => Err(FsError::NotADirectory(path.into())),
        }
    }

    /// Extend/locate backing for a write of `[offset, offset+len)`; returns
    /// the (volume, offset, len) pieces the orchestrator must write.
    ///
    /// New file space stripes round-robin across backing volumes in
    /// `stripe_unit` chunks, so large files enjoy parallel volume bandwidth.
    pub fn write(&mut self, ino: Ino, offset: u64, len: u64) -> Result<Vec<FileExtent>, FsError> {
        assert!(len > 0);
        let unit = self.stripe_unit;
        let class_idx = {
            let node = self.nodes.get(&ino).ok_or_else(|| FsError::NotFound(format!("ino {ino:?}")))?;
            self.class_for(node.policy.raid)
        };
        let node = self.nodes.get_mut(&ino).ok_or_else(|| FsError::NotFound(format!("ino {ino:?}")))?;
        let (size, extents) = match &mut node.kind {
            NodeKind::File { size, extents } => (size, extents),
            NodeKind::Dir { .. } => return Err(FsError::NotAFile(format!("ino {ino:?}"))),
        };
        let class = &mut self.classes[class_idx];
        let nvols = class.volumes.len() as u64;
        let mut out = Vec::new();
        // Walk stripe-unit-aligned pieces of the write range.
        let mut pos = offset;
        let end = offset + len;
        while pos < end {
            let chunk_index = pos / unit;
            let chunk_start = chunk_index * unit;
            let in_chunk = pos - chunk_start;
            let take = (unit - in_chunk).min(end - pos);
            // Ensure the chunk has backing.
            let ext = match extents.get(&chunk_start) {
                Some(e) => *e,
                None => {
                    let vol_idx = (chunk_index % nvols) as usize;
                    let voff = class.cursors[vol_idx];
                    class.cursors[vol_idx] += unit;
                    let e = FileExtent { vol: class.volumes[vol_idx], voff, len: unit };
                    extents.insert(chunk_start, e);
                    e
                }
            };
            out.push(FileExtent { vol: ext.vol, voff: ext.voff + in_chunk, len: take });
            pos += take;
        }
        *size = (*size).max(end);
        Ok(out)
    }

    /// Locate the backing for a read; unbacked holes read as zeroes and are
    /// simply absent from the result.
    pub fn read(&self, ino: Ino, offset: u64, len: u64) -> Result<Vec<FileExtent>, FsError> {
        let node = self.nodes.get(&ino).ok_or_else(|| FsError::NotFound(format!("ino {ino:?}")))?;
        let extents = match &node.kind {
            NodeKind::File { extents, .. } => extents,
            NodeKind::Dir { .. } => return Err(FsError::NotAFile(format!("ino {ino:?}"))),
        };
        let unit = self.stripe_unit;
        let mut out = Vec::new();
        let mut pos = offset;
        let end = offset + len;
        while pos < end {
            let chunk_start = (pos / unit) * unit;
            let in_chunk = pos - chunk_start;
            let take = (unit - in_chunk).min(end - pos);
            if let Some(e) = extents.get(&chunk_start) {
                out.push(FileExtent { vol: e.vol, voff: e.voff + in_chunk, len: take });
            }
            pos += take;
        }
        Ok(out)
    }

    /// Remove a file; returns its extents so the caller can UNMAP them from
    /// the volumes (returning physical space to the pool, §3).
    pub fn unlink(&mut self, path: &str) -> Result<Vec<FileExtent>, FsError> {
        let ino = self.lookup(path)?;
        if ino == ROOT {
            return Err(FsError::InvalidPath(path.into()));
        }
        match &self.nodes[&ino].kind {
            NodeKind::Dir { children } => {
                if !children.is_empty() {
                    return Err(FsError::DirectoryNotEmpty(path.into()));
                }
            }
            NodeKind::File { .. } => {}
        }
        let parent = self.nodes[&ino].parent;
        let (_, name) = Self::split_parent(path)?;
        if let NodeKind::Dir { children } = &mut self.nodes.get_mut(&parent).expect("parent").kind {
            children.remove(&name);
        }
        let node = self.nodes.remove(&ino).expect("exists");
        Ok(match node.kind {
            NodeKind::File { extents, .. } => extents.into_values().collect(),
            NodeKind::Dir { .. } => vec![],
        })
    }

    /// Rename/move. Fails if the destination exists.
    pub fn rename(&mut self, from: &str, to: &str) -> Result<(), FsError> {
        let ino = self.lookup(from)?;
        if self.lookup(to).is_ok() {
            return Err(FsError::AlreadyExists(to.into()));
        }
        let (to_parent_path, to_name) = Self::split_parent(to)?;
        let to_parent = self.lookup(&to_parent_path)?;
        if !matches!(self.nodes[&to_parent].kind, NodeKind::Dir { .. }) {
            return Err(FsError::NotADirectory(to_parent_path));
        }
        let (_, from_name) = Self::split_parent(from)?;
        let from_parent = self.nodes[&ino].parent;
        if let NodeKind::Dir { children } = &mut self.nodes.get_mut(&from_parent).expect("parent").kind {
            children.remove(&from_name);
        }
        if let NodeKind::Dir { children } = &mut self.nodes.get_mut(&to_parent).expect("parent").kind {
            children.insert(to_name, ino);
        }
        self.nodes.get_mut(&ino).expect("exists").parent = to_parent;
        Ok(())
    }

    /// Number of live inodes (including the root).
    pub fn inode_count(&self) -> usize {
        self.nodes.len()
    }

    /// Current size of a file by inode; `None` for directories or unknown
    /// inodes.
    pub fn size_of(&self, ino: Ino) -> Option<u64> {
        match &self.nodes.get(&ino)?.kind {
            NodeKind::File { size, .. } => Some(*size),
            NodeKind::Dir { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ys_cache::Retention;

    fn fs() -> FileSystem {
        FileSystem::new(vec![VolumeId(0), VolumeId(1), VolumeId(2), VolumeId(3)], 1 << 20)
    }

    #[test]
    fn create_lookup_stat() {
        let mut f = fs();
        f.mkdir("/projects", None).unwrap();
        let ino = f.create("/projects/data.bin", None).unwrap();
        assert_eq!(f.lookup("/projects/data.bin").unwrap(), ino);
        let st = f.stat("/projects/data.bin").unwrap();
        assert!(!st.is_dir);
        assert_eq!(st.size, 0);
        assert!(matches!(f.lookup("/nope"), Err(FsError::NotFound(_))));
    }

    #[test]
    fn writes_grow_size_and_stripe_across_volumes() {
        let mut f = fs();
        let ino = f.create("/big", None).unwrap();
        let unit = f.stripe_unit();
        let pieces = f.write(ino, 0, 4 * unit).unwrap();
        let vols: std::collections::HashSet<_> = pieces.iter().map(|e| e.vol).collect();
        assert_eq!(vols.len(), 4, "4 stripe units land on 4 volumes");
        assert_eq!(f.stat("/big").unwrap().size, 4 * unit);
    }

    #[test]
    fn unaligned_write_spans_chunks() {
        let mut f = fs();
        let ino = f.create("/x", None).unwrap();
        let unit = f.stripe_unit();
        let pieces = f.write(ino, unit - 100, 200).unwrap();
        assert_eq!(pieces.len(), 2);
        assert_eq!(pieces[0].len, 100);
        assert_eq!(pieces[1].len, 100);
        let total: u64 = pieces.iter().map(|e| e.len).sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn read_after_write_hits_same_backing() {
        let mut f = fs();
        let ino = f.create("/x", None).unwrap();
        let w = f.write(ino, 12345, 1000).unwrap();
        let r = f.read(ino, 12345, 1000).unwrap();
        assert_eq!(w, r, "reads resolve to the written backing");
    }

    #[test]
    fn read_of_hole_is_empty() {
        let mut f = fs();
        let ino = f.create("/x", None).unwrap();
        f.write(ino, 0, 100).unwrap();
        let r = f.read(ino, 10 << 20, 1000).unwrap();
        assert!(r.is_empty(), "hole reads have no backing");
    }

    #[test]
    fn rewrite_reuses_backing() {
        let mut f = fs();
        let ino = f.create("/x", None).unwrap();
        let w1 = f.write(ino, 0, 1000).unwrap();
        let w2 = f.write(ino, 0, 1000).unwrap();
        assert_eq!(w1, w2, "overwrite does not reallocate");
    }

    #[test]
    fn policy_inherits_from_parent_dir() {
        let mut f = fs();
        let dir_policy = FilePolicy { retention: Retention::High, ..FilePolicy::default() };
        f.mkdir("/hot", Some(dir_policy.clone())).unwrap();
        f.create("/hot/a", None).unwrap();
        assert_eq!(f.stat("/hot/a").unwrap().policy.retention, Retention::High);
        // Explicit policy wins.
        f.create("/hot/b", Some(FilePolicy::scratch())).unwrap();
        assert_eq!(f.stat("/hot/b").unwrap().policy.retention, Retention::Low);
    }

    #[test]
    fn set_policy_changes_behavior_at_any_time() {
        let mut f = fs();
        f.create("/f", None).unwrap();
        f.set_policy("/f", FilePolicy::critical()).unwrap();
        assert_eq!(f.stat("/f").unwrap().policy, FilePolicy::critical());
    }

    #[test]
    fn unlink_returns_extents_for_unmap() {
        let mut f = fs();
        let ino = f.create("/x", None).unwrap();
        let unit = f.stripe_unit();
        f.write(ino, 0, 3 * unit).unwrap();
        let extents = f.unlink("/x").unwrap();
        assert_eq!(extents.len(), 3);
        assert!(f.lookup("/x").is_err());
    }

    #[test]
    fn unlink_nonempty_dir_fails() {
        let mut f = fs();
        f.mkdir("/d", None).unwrap();
        f.create("/d/child", None).unwrap();
        assert!(matches!(f.unlink("/d"), Err(FsError::DirectoryNotEmpty(_))));
        f.unlink("/d/child").unwrap();
        f.unlink("/d").unwrap();
    }

    #[test]
    fn rename_moves_between_directories() {
        let mut f = fs();
        f.mkdir("/a", None).unwrap();
        f.mkdir("/b", None).unwrap();
        let ino = f.create("/a/file", None).unwrap();
        f.rename("/a/file", "/b/moved").unwrap();
        assert_eq!(f.lookup("/b/moved").unwrap(), ino);
        assert!(f.lookup("/a/file").is_err());
        assert_eq!(f.readdir("/a").unwrap(), Vec::<String>::new());
        assert_eq!(f.readdir("/b").unwrap(), vec!["moved"]);
    }

    #[test]
    fn rename_onto_existing_fails() {
        let mut f = fs();
        f.create("/a", None).unwrap();
        f.create("/b", None).unwrap();
        assert!(matches!(f.rename("/a", "/b"), Err(FsError::AlreadyExists(_))));
    }

    #[test]
    fn relative_paths_rejected() {
        let mut f = fs();
        assert!(matches!(f.create("relative", None), Err(FsError::InvalidPath(_))));
    }

    #[test]
    fn readdir_sorted() {
        let mut f = fs();
        f.create("/c", None).unwrap();
        f.create("/a", None).unwrap();
        f.create("/b", None).unwrap();
        assert_eq!(f.readdir("/").unwrap(), vec!["a", "b", "c"]);
    }
}

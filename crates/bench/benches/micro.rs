//! Micro-benchmarks for the hot kernels: GF(2⁸) parity math, the cipher,
//! the LRU, the extent map, the coherence protocol, and the event engine.
//! These are the per-operation costs the whole simulator's wall time rests
//! on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_parity(c: &mut Criterion) {
    let mut g = c.benchmark_group("parity");
    let mut rng = ys_simcore::Rng::new(1);
    let chunk = 64 * 1024usize;
    let data: Vec<Vec<u8>> = (0..8).map(|_| (0..chunk).map(|_| rng.next_u64() as u8).collect()).collect();
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    g.throughput(Throughput::Bytes((chunk * 8) as u64));
    g.bench_function("p_xor_8x64k", |b| b.iter(|| black_box(ys_raid::parity::compute_p(&refs))));
    g.bench_function("q_rs_8x64k", |b| b.iter(|| black_box(ys_raid::parity::compute_q(&refs))));
    let p = ys_raid::parity::compute_p(&refs);
    let q = ys_raid::parity::compute_q(&refs);
    let present: Vec<(usize, &[u8])> =
        data.iter().enumerate().filter(|(i, _)| *i != 2 && *i != 5).map(|(i, d)| (i, d.as_slice())).collect();
    g.throughput(Throughput::Bytes((chunk * 2) as u64));
    g.bench_function("recover_two_64k", |b| {
        b.iter(|| black_box(ys_raid::parity::recover_two_data(&present, 2, 5, &p, &q)))
    });
    g.finish();
}

fn bench_cipher(c: &mut Criterion) {
    let mut g = c.benchmark_group("cipher");
    let key = ys_security::Key::from_seed(7);
    for size in [4 * 1024usize, 64 * 1024] {
        let mut buf = vec![0xA5u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("xtea_ctr", size), &size, |b, _| {
            b.iter(|| {
                ys_security::ctr_xor(&key, 1, 0, &mut buf);
                black_box(buf[0])
            })
        });
    }
    g.finish();
}

fn bench_lru(c: &mut Criterion) {
    use ys_cache::{LruList, Retention};
    c.bench_function("lru_insert_touch_evict", |b| {
        b.iter(|| {
            let mut l: LruList<u64> = LruList::new();
            for k in 0..1000u64 {
                l.insert(k, Retention::Normal);
            }
            for k in (0..1000u64).step_by(3) {
                l.touch(&k);
            }
            let mut evicted = 0;
            while l.evict_where(|_| false).is_some() {
                evicted += 1;
            }
            black_box(evicted)
        })
    });
}

fn bench_extent_map(c: &mut Criterion) {
    use ys_virt::ExtentMap;
    c.bench_function("extent_map_map_unmap_1k", |b| {
        b.iter(|| {
            let mut m = ExtentMap::new();
            for i in 0..1000u64 {
                m.map(i * 4, i * 4 + 1, 2);
            }
            black_box(m.unmap(0, 4096).len())
        })
    });
    c.bench_function("extent_map_lookup", |b| {
        let mut m = ExtentMap::new();
        for i in 0..10_000u64 {
            m.map(i * 3, i * 3, 2);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % 30_000;
            black_box(m.translate(i))
        })
    });
}

fn bench_coherence(c: &mut Criterion) {
    use ys_cache::{CacheCluster, PageKey, Retention};
    c.bench_function("coherence_write_read_cycle", |b| {
        b.iter(|| {
            let mut cc = CacheCluster::new(8, 1024);
            for p in 0..256u64 {
                cc.write((p % 8) as usize, PageKey::new(0, p), 2, Retention::Normal).unwrap();
            }
            for p in 0..256u64 {
                let _ = cc.read(((p + 3) % 8) as usize, PageKey::new(0, p)).unwrap();
                cc.destage(PageKey::new(0, p)).unwrap();
            }
            black_box(cc.stats().remote_hits)
        })
    });
}

fn bench_engine(c: &mut Criterion) {
    use ys_simcore::{Control, Engine, SimTime};
    c.bench_function("event_engine_100k", |b| {
        b.iter(|| {
            let mut e: Engine<u64> = Engine::new();
            for i in 0..1000u64 {
                e.schedule_at(SimTime(i * 17 % 5000), i);
            }
            let mut n = 0u64;
            e.run(|eng, t, v| {
                n += 1;
                if v % 10 == 0 && n < 100_000 {
                    eng.schedule_at(SimTime(t.nanos() + 13), v + 1);
                }
                Control::Continue
            });
            black_box(n)
        })
    });
}

fn bench_full_cluster_op(c: &mut Criterion) {
    use ys_cache::Retention;
    use ys_core::{BladeCluster, ClusterConfig};
    use ys_simcore::SimTime;
    c.bench_function("cluster_cached_read_op", |b| {
        let mut cl = BladeCluster::new(ClusterConfig::default().with_blades(4).with_disks(8));
        let vol = cl.create_volume("v", 0, 1 << 30).unwrap();
        let mut t = cl.write(SimTime::ZERO, 0, vol, 0, 64 * 1024, 1, Retention::Normal).unwrap().done;
        b.iter(|| {
            let r = cl.read(t, 0, vol, 0, 64 * 1024).unwrap();
            t = r.done;
            black_box(r.latency)
        })
    });
}

criterion_group!(
    micro,
    bench_parity,
    bench_cipher,
    bench_lru,
    bench_extent_map,
    bench_coherence,
    bench_engine,
    bench_full_cluster_op
);
criterion_main!(micro);

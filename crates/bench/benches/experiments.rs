//! Criterion wall-time benches over the experiment bodies — one bench per
//! figure/claim, so `cargo bench` regenerates every result and also tracks
//! the harness's own cost.
//!
//! The *simulated* metrics (MB/s, latency, loss counts) are printed by
//! `cargo run -p ys-bench --bin report`; Criterion here measures that each
//! experiment is cheap enough to iterate on and that the simulator itself
//! doesn't regress.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ys_bench::experiments;

fn bench_all(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    for (id, _title, f) in experiments::registry() {
        g.bench_function(id, |b| b.iter(|| black_box(f())));
    }
    g.finish();
}

criterion_group!(benches, bench_all);
criterion_main!(benches);

//! Declarative simulation specs: a JSON-serializable description of a
//! cluster, a workload, and a fault schedule, so operators can explore
//! configurations without writing Rust (`cargo run -p ys-bench --bin
//! simulate -- spec.json`).

use serde::{DeError, Deserialize, Serialize, Value};
use ys_core::{BladeCluster, ClusterConfig, LoadBalance};
use ys_proto::Workload;
use ys_simcore::fault::{FaultPlan, FaultTarget};
use ys_simcore::time::{SimDuration, SimTime};

// The serde shim has no derive macros (no proc-macro stack offline), so the
// spec types implement Serialize/Deserialize by hand with the same JSON
// shape the derives produced: lowercase enum names, snake_case externally
// tagged fault variants, per-field defaults, unknown fields ignored.

/// Read `key` from a JSON object, falling back to `default` when absent.
fn field<T: Deserialize>(v: &Value, key: &str, default: impl FnOnce() -> T) -> Result<T, DeError> {
    match v.get(key) {
        Some(inner) => {
            T::from_value(inner).map_err(|e| DeError::custom(format!("field `{key}`: {e}")))
        }
        None => Ok(default()),
    }
}

/// RAID level by name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RaidSpec {
    Raid0,
    Raid1,
    Raid5,
    Raid6,
}

impl Serialize for RaidSpec {
    fn to_value(&self) -> Value {
        let name = match self {
            RaidSpec::Raid0 => "raid0",
            RaidSpec::Raid1 => "raid1",
            RaidSpec::Raid5 => "raid5",
            RaidSpec::Raid6 => "raid6",
        };
        Value::Str(name.to_owned())
    }
}

impl Deserialize for RaidSpec {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_str() {
            Some("raid0") => Ok(RaidSpec::Raid0),
            Some("raid1") => Ok(RaidSpec::Raid1),
            Some("raid5") => Ok(RaidSpec::Raid5),
            Some("raid6") => Ok(RaidSpec::Raid6),
            other => Err(DeError::custom(format!("unknown raid level {other:?}"))),
        }
    }
}

impl RaidSpec {
    fn to_level(self) -> ys_raid::RaidLevel {
        match self {
            RaidSpec::Raid0 => ys_raid::RaidLevel::Raid0,
            RaidSpec::Raid1 => ys_raid::RaidLevel::Raid1 { copies: 2 },
            RaidSpec::Raid5 => ys_raid::RaidLevel::Raid5,
            RaidSpec::Raid6 => ys_raid::RaidLevel::Raid6,
        }
    }
}

/// Workload pattern by name.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PatternSpec {
    Sequential,
    Random,
    Zipf,
}

impl Serialize for PatternSpec {
    fn to_value(&self) -> Value {
        let name = match self {
            PatternSpec::Sequential => "sequential",
            PatternSpec::Random => "random",
            PatternSpec::Zipf => "zipf",
        };
        Value::Str(name.to_owned())
    }
}

impl Deserialize for PatternSpec {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_str() {
            Some("sequential") => Ok(PatternSpec::Sequential),
            Some("random") => Ok(PatternSpec::Random),
            Some("zipf") => Ok(PatternSpec::Zipf),
            other => Err(DeError::custom(format!("unknown pattern {other:?}"))),
        }
    }
}

/// One scheduled fault, externally tagged:
/// `{"blade_fail": {"at_ms": 10, "blade": 0}}`.
#[derive(Clone, Copy, Debug)]
pub enum FaultSpec {
    BladeFail { at_ms: u64, blade: usize },
    BladeRepair { at_ms: u64, blade: usize },
    DiskFail { at_ms: u64, disk: usize },
}

impl Serialize for FaultSpec {
    fn to_value(&self) -> Value {
        let (tag, at_ms, unit_key, unit) = match *self {
            FaultSpec::BladeFail { at_ms, blade } => ("blade_fail", at_ms, "blade", blade),
            FaultSpec::BladeRepair { at_ms, blade } => ("blade_repair", at_ms, "blade", blade),
            FaultSpec::DiskFail { at_ms, disk } => ("disk_fail", at_ms, "disk", disk),
        };
        let body = Value::Obj(vec![
            ("at_ms".to_owned(), at_ms.to_value()),
            (unit_key.to_owned(), unit.to_value()),
        ]);
        Value::Obj(vec![(tag.to_owned(), body)])
    }
}

impl Deserialize for FaultSpec {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = match v {
            Value::Obj(entries) if entries.len() == 1 => entries,
            _ => return Err(DeError::custom("fault must be a single-key tagged object")),
        };
        let (tag, body) = &entries[0];
        let at_ms = field(body, "at_ms", || 0u64)?;
        match tag.as_str() {
            "blade_fail" => Ok(FaultSpec::BladeFail { at_ms, blade: field(body, "blade", || 0)? }),
            "blade_repair" => {
                Ok(FaultSpec::BladeRepair { at_ms, blade: field(body, "blade", || 0)? })
            }
            "disk_fail" => Ok(FaultSpec::DiskFail { at_ms, disk: field(body, "disk", || 0)? }),
            other => Err(DeError::custom(format!("unknown fault kind {other:?}"))),
        }
    }
}

/// The whole scenario. Every field is optional in JSON; absent fields take
/// the `d_*` defaults below.
#[derive(Clone, Debug)]
pub struct SimSpec {
    pub blades: usize,
    pub disks: usize,
    pub clients: usize,
    pub raid: RaidSpec,
    pub cache_mb_per_blade: usize,
    pub prefetch_pages: usize,
    pub write_copies: usize,
    pub load_balance: String,
    pub pattern: PatternSpec,
    pub working_set_mb: u64,
    pub io_kb: u64,
    pub write_fraction: f64,
    pub zipf_theta: f64,
    pub ops: usize,
    pub seed: u64,
    pub faults: Vec<FaultSpec>,
}

impl Serialize for SimSpec {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("blades".to_owned(), self.blades.to_value()),
            ("disks".to_owned(), self.disks.to_value()),
            ("clients".to_owned(), self.clients.to_value()),
            ("raid".to_owned(), self.raid.to_value()),
            ("cache_mb_per_blade".to_owned(), self.cache_mb_per_blade.to_value()),
            ("prefetch_pages".to_owned(), self.prefetch_pages.to_value()),
            ("write_copies".to_owned(), self.write_copies.to_value()),
            ("load_balance".to_owned(), self.load_balance.to_value()),
            ("pattern".to_owned(), self.pattern.to_value()),
            ("working_set_mb".to_owned(), self.working_set_mb.to_value()),
            ("io_kb".to_owned(), self.io_kb.to_value()),
            ("write_fraction".to_owned(), self.write_fraction.to_value()),
            ("zipf_theta".to_owned(), self.zipf_theta.to_value()),
            ("ops".to_owned(), self.ops.to_value()),
            ("seed".to_owned(), self.seed.to_value()),
            ("faults".to_owned(), self.faults.to_value()),
        ])
    }
}

impl Deserialize for SimSpec {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if !matches!(v, Value::Obj(_)) {
            return Err(DeError::custom("spec must be a JSON object"));
        }
        Ok(SimSpec {
            blades: field(v, "blades", d_blades)?,
            disks: field(v, "disks", d_disks)?,
            clients: field(v, "clients", d_clients)?,
            raid: field(v, "raid", d_raid)?,
            cache_mb_per_blade: field(v, "cache_mb_per_blade", d_cache_mb)?,
            prefetch_pages: field(v, "prefetch_pages", || 0)?,
            write_copies: field(v, "write_copies", d_copies)?,
            load_balance: field(v, "load_balance", d_lb)?,
            pattern: field(v, "pattern", d_pattern)?,
            working_set_mb: field(v, "working_set_mb", d_ws_mb)?,
            io_kb: field(v, "io_kb", d_io_kb)?,
            write_fraction: field(v, "write_fraction", d_wf)?,
            zipf_theta: field(v, "zipf_theta", d_theta)?,
            ops: field(v, "ops", d_ops)?,
            seed: field(v, "seed", d_seed)?,
            faults: field(v, "faults", Vec::new)?,
        })
    }
}

fn d_blades() -> usize { 4 }
fn d_disks() -> usize { 16 }
fn d_clients() -> usize { 8 }
fn d_raid() -> RaidSpec { RaidSpec::Raid5 }
fn d_cache_mb() -> usize { 256 }
fn d_copies() -> usize { 2 }
fn d_lb() -> String { "round_robin".into() }
fn d_pattern() -> PatternSpec { PatternSpec::Random }
fn d_ws_mb() -> u64 { 256 }
fn d_io_kb() -> u64 { 64 }
fn d_wf() -> f64 { 0.3 }
fn d_theta() -> f64 { 0.99 }
fn d_ops() -> usize { 2000 }
fn d_seed() -> u64 { 42 }

/// The numbers a run produces.
#[derive(Clone, Debug)]
pub struct SimOutcome {
    pub ops_completed: u64,
    pub ops_failed: u64,
    pub availability: f64,
    pub mb_moved: f64,
    pub read_p50_ms: f64,
    pub read_p99_ms: f64,
    pub write_p99_ms: f64,
    pub dirty_pages_lost: u64,
    pub cache_local_hits: u64,
    pub cache_remote_hits: u64,
    pub disk_reads: u64,
}

impl Serialize for SimOutcome {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("ops_completed".to_owned(), self.ops_completed.to_value()),
            ("ops_failed".to_owned(), self.ops_failed.to_value()),
            ("availability".to_owned(), self.availability.to_value()),
            ("mb_moved".to_owned(), self.mb_moved.to_value()),
            ("read_p50_ms".to_owned(), self.read_p50_ms.to_value()),
            ("read_p99_ms".to_owned(), self.read_p99_ms.to_value()),
            ("write_p99_ms".to_owned(), self.write_p99_ms.to_value()),
            ("dirty_pages_lost".to_owned(), self.dirty_pages_lost.to_value()),
            ("cache_local_hits".to_owned(), self.cache_local_hits.to_value()),
            ("cache_remote_hits".to_owned(), self.cache_remote_hits.to_value()),
            ("disk_reads".to_owned(), self.disk_reads.to_value()),
        ])
    }
}

impl Deserialize for SimOutcome {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(SimOutcome {
            ops_completed: field(v, "ops_completed", || 0)?,
            ops_failed: field(v, "ops_failed", || 0)?,
            availability: field(v, "availability", || 0.0)?,
            mb_moved: field(v, "mb_moved", || 0.0)?,
            read_p50_ms: field(v, "read_p50_ms", || 0.0)?,
            read_p99_ms: field(v, "read_p99_ms", || 0.0)?,
            write_p99_ms: field(v, "write_p99_ms", || 0.0)?,
            dirty_pages_lost: field(v, "dirty_pages_lost", || 0)?,
            cache_local_hits: field(v, "cache_local_hits", || 0)?,
            cache_remote_hits: field(v, "cache_remote_hits", || 0)?,
            disk_reads: field(v, "disk_reads", || 0)?,
        })
    }
}

impl SimSpec {
    pub fn to_cluster_config(&self) -> ClusterConfig {
        let lb = match self.load_balance.as_str() {
            "page_affinity" => LoadBalance::PageAffinity,
            "pinned" => LoadBalance::PinnedByVolume,
            _ => LoadBalance::RoundRobin,
        };
        ClusterConfig::default()
            .with_blades(self.blades)
            .with_disks(self.disks)
            .with_clients(self.clients)
            .with_raid(self.raid.to_level())
            .with_cache_pages(self.cache_mb_per_blade * 16) // 64 KiB pages
            .with_load_balance(lb)
            .with_prefetch(self.prefetch_pages)
            .with_write_copies(self.write_copies)
    }

    pub fn to_workload(&self) -> Workload {
        let extent = self.working_set_mb << 20;
        let io = self.io_kb << 10;
        match self.pattern {
            PatternSpec::Sequential => Workload::sequential(extent, io, self.seed),
            PatternSpec::Random => Workload::random(extent, io, self.write_fraction, self.seed),
            PatternSpec::Zipf => Workload::zipf(extent, io, self.zipf_theta, self.write_fraction, self.seed),
        }
    }

    pub fn to_fault_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::new();
        for f in &self.faults {
            plan = match *f {
                FaultSpec::BladeFail { at_ms, blade } => {
                    plan.fail(SimTime::ZERO + SimDuration::from_millis(at_ms), FaultTarget::Blade(blade))
                }
                FaultSpec::BladeRepair { at_ms, blade } => {
                    plan.repair(SimTime::ZERO + SimDuration::from_millis(at_ms), FaultTarget::Blade(blade))
                }
                FaultSpec::DiskFail { at_ms, disk } => {
                    plan.fail(SimTime::ZERO + SimDuration::from_millis(at_ms), FaultTarget::Disk(disk))
                }
            };
        }
        plan
    }

    /// Run the scenario to completion.
    pub fn run(&self) -> SimOutcome {
        let mut cluster = BladeCluster::new(self.to_cluster_config());
        let vol = cluster
            .create_volume("spec", 0, (self.working_set_mb << 20).max(1 << 30))
            .expect("volume");
        let result = ys_core::run_scenario(
            &mut cluster,
            vol,
            self.to_workload(),
            self.ops,
            self.write_copies,
            &self.to_fault_plan(),
        );
        SimOutcome {
            ops_completed: result.ops_completed,
            ops_failed: result.ops_failed,
            availability: result.availability(),
            mb_moved: result.bytes_moved as f64 / 1e6,
            read_p50_ms: cluster.stats.read_latency.p50().as_millis_f64(),
            read_p99_ms: cluster.stats.read_latency.p99().as_millis_f64(),
            write_p99_ms: cluster.stats.write_latency.p99().as_millis_f64(),
            dirty_pages_lost: result.dirty_pages_lost,
            cache_local_hits: cluster.stats.reads_from_local_cache,
            cache_remote_hits: cluster.stats.reads_from_remote_cache,
            disk_reads: cluster.stats.reads_from_disk,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_round_trip_through_json() {
        let spec: SimSpec = serde_json::from_str("{}").unwrap();
        assert_eq!(spec.blades, 4);
        assert_eq!(spec.raid, RaidSpec::Raid5);
        let text = serde_json::to_string(&spec).unwrap();
        let back: SimSpec = serde_json::from_str(&text).unwrap();
        assert_eq!(back.blades, spec.blades);
        assert_eq!(back.ops, spec.ops);
    }

    #[test]
    fn spec_runs_and_reports() {
        let spec: SimSpec = serde_json::from_str(
            r#"{
                "blades": 4, "disks": 8, "ops": 300, "working_set_mb": 64,
                "pattern": "zipf", "zipf_theta": 0.9,
                "faults": [{"blade_fail": {"at_ms": 10, "blade": 0}}]
            }"#,
        )
        .unwrap();
        let out = spec.run();
        assert_eq!(out.ops_completed + out.ops_failed, 300);
        assert_eq!(out.availability, 1.0, "one blade failure never refuses service");
        assert_eq!(out.dirty_pages_lost, 0);
        assert!(out.read_p99_ms > 0.0);
    }

    #[test]
    fn same_spec_same_outcome() {
        let spec: SimSpec = serde_json::from_str(r#"{"ops": 200, "working_set_mb": 32}"#).unwrap();
        let a = serde_json::to_string(&spec.run()).unwrap();
        let b = serde_json::to_string(&spec.run()).unwrap();
        assert_eq!(a, b, "spec runs are deterministic");
    }
}

#[cfg(test)]
mod scenario_file_tests {
    use super::*;

    /// Every checked-in scenario file must parse and run.
    #[test]
    fn shipped_scenario_files_are_valid() {
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios");
        let mut found = 0;
        for entry in std::fs::read_dir(dir).expect("scenarios/ exists") {
            let path = entry.unwrap().path();
            if path.extension().map(|e| e == "json").unwrap_or(false) {
                let text = std::fs::read_to_string(&path).unwrap();
                let spec: SimSpec = serde_json::from_str(&text)
                    .unwrap_or_else(|e| panic!("{path:?} does not parse: {e}"));
                // Shrink ops for test speed; the shape is what we validate.
                let spec = SimSpec { ops: spec.ops.min(300), ..spec };
                let out = spec.run();
                assert_eq!(out.ops_completed + out.ops_failed, spec.ops as u64, "{path:?}");
                found += 1;
            }
        }
        assert!(found >= 2, "scenario files missing");
    }
}

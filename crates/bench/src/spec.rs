//! Declarative simulation specs: a JSON-serializable description of a
//! cluster, a workload, and a fault schedule, so operators can explore
//! configurations without writing Rust (`cargo run -p ys-bench --bin
//! simulate -- spec.json`).

use serde::{Deserialize, Serialize};
use ys_core::{BladeCluster, ClusterConfig, LoadBalance};
use ys_proto::Workload;
use ys_simcore::fault::{FaultPlan, FaultTarget};
use ys_simcore::time::{SimDuration, SimTime};

/// RAID level by name.
#[derive(Clone, Copy, Debug, Serialize, Deserialize, PartialEq, Eq)]
#[serde(rename_all = "lowercase")]
pub enum RaidSpec {
    Raid0,
    Raid1,
    Raid5,
    Raid6,
}

impl RaidSpec {
    fn to_level(self) -> ys_raid::RaidLevel {
        match self {
            RaidSpec::Raid0 => ys_raid::RaidLevel::Raid0,
            RaidSpec::Raid1 => ys_raid::RaidLevel::Raid1 { copies: 2 },
            RaidSpec::Raid5 => ys_raid::RaidLevel::Raid5,
            RaidSpec::Raid6 => ys_raid::RaidLevel::Raid6,
        }
    }
}

/// Workload pattern by name.
#[derive(Clone, Copy, Debug, Serialize, Deserialize, PartialEq)]
#[serde(rename_all = "lowercase")]
pub enum PatternSpec {
    Sequential,
    Random,
    Zipf,
}

/// One scheduled fault.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FaultSpec {
    BladeFail { at_ms: u64, blade: usize },
    BladeRepair { at_ms: u64, blade: usize },
    DiskFail { at_ms: u64, disk: usize },
}

/// The whole scenario.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimSpec {
    #[serde(default = "d_blades")]
    pub blades: usize,
    #[serde(default = "d_disks")]
    pub disks: usize,
    #[serde(default = "d_clients")]
    pub clients: usize,
    #[serde(default = "d_raid")]
    pub raid: RaidSpec,
    #[serde(default = "d_cache_mb")]
    pub cache_mb_per_blade: usize,
    #[serde(default)]
    pub prefetch_pages: usize,
    #[serde(default = "d_copies")]
    pub write_copies: usize,
    #[serde(default = "d_lb")]
    pub load_balance: String,
    #[serde(default = "d_pattern")]
    pub pattern: PatternSpec,
    #[serde(default = "d_ws_mb")]
    pub working_set_mb: u64,
    #[serde(default = "d_io_kb")]
    pub io_kb: u64,
    #[serde(default = "d_wf")]
    pub write_fraction: f64,
    #[serde(default = "d_theta")]
    pub zipf_theta: f64,
    #[serde(default = "d_ops")]
    pub ops: usize,
    #[serde(default = "d_seed")]
    pub seed: u64,
    #[serde(default)]
    pub faults: Vec<FaultSpec>,
}

fn d_blades() -> usize { 4 }
fn d_disks() -> usize { 16 }
fn d_clients() -> usize { 8 }
fn d_raid() -> RaidSpec { RaidSpec::Raid5 }
fn d_cache_mb() -> usize { 256 }
fn d_copies() -> usize { 2 }
fn d_lb() -> String { "round_robin".into() }
fn d_pattern() -> PatternSpec { PatternSpec::Random }
fn d_ws_mb() -> u64 { 256 }
fn d_io_kb() -> u64 { 64 }
fn d_wf() -> f64 { 0.3 }
fn d_theta() -> f64 { 0.99 }
fn d_ops() -> usize { 2000 }
fn d_seed() -> u64 { 42 }

/// The numbers a run produces.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimOutcome {
    pub ops_completed: u64,
    pub ops_failed: u64,
    pub availability: f64,
    pub mb_moved: f64,
    pub read_p50_ms: f64,
    pub read_p99_ms: f64,
    pub write_p99_ms: f64,
    pub dirty_pages_lost: u64,
    pub cache_local_hits: u64,
    pub cache_remote_hits: u64,
    pub disk_reads: u64,
}

impl SimSpec {
    pub fn to_cluster_config(&self) -> ClusterConfig {
        let lb = match self.load_balance.as_str() {
            "page_affinity" => LoadBalance::PageAffinity,
            "pinned" => LoadBalance::PinnedByVolume,
            _ => LoadBalance::RoundRobin,
        };
        ClusterConfig::default()
            .with_blades(self.blades)
            .with_disks(self.disks)
            .with_clients(self.clients)
            .with_raid(self.raid.to_level())
            .with_cache_pages(self.cache_mb_per_blade * 16) // 64 KiB pages
            .with_load_balance(lb)
            .with_prefetch(self.prefetch_pages)
            .with_write_copies(self.write_copies)
    }

    pub fn to_workload(&self) -> Workload {
        let extent = self.working_set_mb << 20;
        let io = self.io_kb << 10;
        match self.pattern {
            PatternSpec::Sequential => Workload::sequential(extent, io, self.seed),
            PatternSpec::Random => Workload::random(extent, io, self.write_fraction, self.seed),
            PatternSpec::Zipf => Workload::zipf(extent, io, self.zipf_theta, self.write_fraction, self.seed),
        }
    }

    pub fn to_fault_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::new();
        for f in &self.faults {
            plan = match *f {
                FaultSpec::BladeFail { at_ms, blade } => {
                    plan.fail(SimTime::ZERO + SimDuration::from_millis(at_ms), FaultTarget::Blade(blade))
                }
                FaultSpec::BladeRepair { at_ms, blade } => {
                    plan.repair(SimTime::ZERO + SimDuration::from_millis(at_ms), FaultTarget::Blade(blade))
                }
                FaultSpec::DiskFail { at_ms, disk } => {
                    plan.fail(SimTime::ZERO + SimDuration::from_millis(at_ms), FaultTarget::Disk(disk))
                }
            };
        }
        plan
    }

    /// Run the scenario to completion.
    pub fn run(&self) -> SimOutcome {
        let mut cluster = BladeCluster::new(self.to_cluster_config());
        let vol = cluster
            .create_volume("spec", 0, (self.working_set_mb << 20).max(1 << 30))
            .expect("volume");
        let result = ys_core::run_scenario(
            &mut cluster,
            vol,
            self.to_workload(),
            self.ops,
            self.write_copies,
            &self.to_fault_plan(),
        );
        SimOutcome {
            ops_completed: result.ops_completed,
            ops_failed: result.ops_failed,
            availability: result.availability(),
            mb_moved: result.bytes_moved as f64 / 1e6,
            read_p50_ms: cluster.stats.read_latency.p50().as_millis_f64(),
            read_p99_ms: cluster.stats.read_latency.p99().as_millis_f64(),
            write_p99_ms: cluster.stats.write_latency.p99().as_millis_f64(),
            dirty_pages_lost: result.dirty_pages_lost,
            cache_local_hits: cluster.stats.reads_from_local_cache,
            cache_remote_hits: cluster.stats.reads_from_remote_cache,
            disk_reads: cluster.stats.reads_from_disk,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_round_trip_through_json() {
        let spec: SimSpec = serde_json::from_str("{}").unwrap();
        assert_eq!(spec.blades, 4);
        assert_eq!(spec.raid, RaidSpec::Raid5);
        let text = serde_json::to_string(&spec).unwrap();
        let back: SimSpec = serde_json::from_str(&text).unwrap();
        assert_eq!(back.blades, spec.blades);
        assert_eq!(back.ops, spec.ops);
    }

    #[test]
    fn spec_runs_and_reports() {
        let spec: SimSpec = serde_json::from_str(
            r#"{
                "blades": 4, "disks": 8, "ops": 300, "working_set_mb": 64,
                "pattern": "zipf", "zipf_theta": 0.9,
                "faults": [{"blade_fail": {"at_ms": 10, "blade": 0}}]
            }"#,
        )
        .unwrap();
        let out = spec.run();
        assert_eq!(out.ops_completed + out.ops_failed, 300);
        assert_eq!(out.availability, 1.0, "one blade failure never refuses service");
        assert_eq!(out.dirty_pages_lost, 0);
        assert!(out.read_p99_ms > 0.0);
    }

    #[test]
    fn same_spec_same_outcome() {
        let spec: SimSpec = serde_json::from_str(r#"{"ops": 200, "working_set_mb": 32}"#).unwrap();
        let a = serde_json::to_string(&spec.run()).unwrap();
        let b = serde_json::to_string(&spec.run()).unwrap();
        assert_eq!(a, b, "spec runs are deterministic");
    }
}

#[cfg(test)]
mod scenario_file_tests {
    use super::*;

    /// Every checked-in scenario file must parse and run.
    #[test]
    fn shipped_scenario_files_are_valid() {
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios");
        let mut found = 0;
        for entry in std::fs::read_dir(dir).expect("scenarios/ exists") {
            let path = entry.unwrap().path();
            if path.extension().map(|e| e == "json").unwrap_or(false) {
                let text = std::fs::read_to_string(&path).unwrap();
                let spec: SimSpec = serde_json::from_str(&text)
                    .unwrap_or_else(|e| panic!("{path:?} does not parse: {e}"));
                // Shrink ops for test speed; the shape is what we validate.
                let spec = SimSpec { ops: spec.ops.min(300), ..spec };
                let out = spec.run();
                assert_eq!(out.ops_completed + out.ops_failed, spec.ops as u64, "{path:?}");
                found += 1;
            }
        }
        assert!(found >= 2, "scenario files missing");
    }
}

//! Closed-loop multi-client workload driver over the virtual-time cluster.
//!
//! Each client keeps one I/O outstanding: it issues its next operation the
//! moment the previous one completes. A binary heap orders clients by their
//! next-issue time so the cluster always sees requests in global time order.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use ys_simcore::time::{SimDuration, SimTime};

/// Result of a closed-loop run.
#[derive(Clone, Copy, Debug)]
pub struct RunResult {
    pub makespan: SimDuration,
    pub bytes: u64,
    pub ops: u64,
}

impl RunResult {
    pub fn mb_per_sec(&self) -> f64 {
        ys_simcore::time::throughput_mb_per_sec(self.bytes, self.makespan)
    }

    pub fn iops(&self) -> f64 {
        if self.makespan.is_zero() {
            0.0
        } else {
            self.ops as f64 / self.makespan.as_secs_f64()
        }
    }
}

/// Run `clients` closed-loop clients, each issuing `ops_per_client`
/// operations through `issue(client, now) -> (done, bytes)`.
pub fn closed_loop<F>(clients: usize, ops_per_client: usize, mut issue: F) -> RunResult
where
    F: FnMut(usize, SimTime) -> (SimTime, u64),
{
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = (0..clients).map(|c| Reverse((0, c))).collect();
    let mut remaining = vec![ops_per_client; clients];
    let mut bytes = 0u64;
    let mut ops = 0u64;
    let mut end = SimTime::ZERO;
    while let Some(Reverse((t, c))) = heap.pop() {
        if remaining[c] == 0 {
            continue;
        }
        let now = SimTime(t);
        let (done, b) = issue(c, now);
        debug_assert!(done >= now);
        bytes += b;
        ops += 1;
        end = end.max(done);
        remaining[c] -= 1;
        if remaining[c] > 0 {
            heap.push(Reverse((done.nanos(), c)));
        }
    }
    RunResult { makespan: end.since(SimTime::ZERO), bytes, ops }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_client_is_sequential() {
        // Each op takes 10 ns: makespan = 100 ns for 10 ops.
        let r = closed_loop(1, 10, |_, now| (now + SimDuration::from_nanos(10), 1));
        assert_eq!(r.makespan.nanos(), 100);
        assert_eq!(r.ops, 10);
        assert_eq!(r.bytes, 10);
    }

    #[test]
    fn independent_clients_overlap() {
        // Two clients, disjoint fixed-cost ops: same makespan as one client.
        let r1 = closed_loop(1, 10, |_, now| (now + SimDuration::from_nanos(10), 1));
        let r2 = closed_loop(2, 10, |_, now| (now + SimDuration::from_nanos(10), 1));
        assert_eq!(r1.makespan, r2.makespan, "perfectly parallel ops");
        assert_eq!(r2.ops, 20);
    }

    #[test]
    fn issue_order_is_globally_time_sorted() {
        let mut last = 0u64;
        closed_loop(4, 25, |c, now| {
            assert!(now.nanos() >= last, "time went backwards");
            last = now.nanos();
            (now + SimDuration::from_nanos(7 + c as u64), 1)
        });
    }
}

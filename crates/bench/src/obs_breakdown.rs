//! The `--obs` appendix of the bench report: one instrumented reference
//! run with a `ys-obs` metrics registry attached, rendered as
//! per-subsystem and per-blade breakdowns.
//!
//! Kept separate from the experiment bodies so the default report path is
//! byte-identical with observability off — tracing and collection happen
//! only in here.

use ys_cache::Retention;
use ys_core::{BladeCluster, ClusterConfig};
use ys_obs::{collect_cluster, record_trace_drops, Metric, MetricsRegistry, Table};
use ys_proto::Workload;
use ys_simcore::time::SimTime;

/// Run a mixed Zipf workload on an instrumented cluster and render the
/// registry grouped by subsystem, plus the per-blade ledger.
pub fn breakdown() -> String {
    const OPS: usize = 1200;
    let mut c = BladeCluster::new(ClusterConfig::default().with_blades(4).with_disks(8));
    c.enable_tracing(8192);
    let vol = c.create_volume("obs", 0, 4 << 30).expect("volume");
    let mut wl = Workload::zipf(1 << 30, 64 * 1024, 1.0, 0.3, 7);
    let mut t = SimTime::ZERO;
    for i in 0..OPS {
        let op = wl.next_op();
        let done = if op.write {
            c.write(t, i % 8, vol, op.offset, op.len, 2, Retention::Normal).expect("write")
        } else {
            c.read(t, i % 8, vol, op.offset, op.len).expect("read")
        };
        t = done.done;
    }
    let mut reg = MetricsRegistry::new();
    collect_cluster(&mut reg, &c, t);
    let (events, dropped) = c.take_trace();
    record_trace_drops(&mut reg, "cluster", dropped);

    let mut out = String::from("================================================================\n");
    out.push_str("OBS per-subsystem breakdown (reference run: Zipf 1.0, 1200 ops, 30% writes)\n");
    out.push_str("================================================================\n");
    let mut agg = Table::new("aggregate metrics by subsystem", &["metric", "kind", "value"]);
    for (key, metric) in reg.iter() {
        if key.blade.is_some() {
            continue;
        }
        let (kind, value) = match metric {
            Metric::Counter(c) => (
                "counter",
                if c.bytes() > 0 { format!("{} ({} B)", c.count(), c.bytes()) } else { c.count().to_string() },
            ),
            Metric::Rate(r) => ("rate", format!("{:.2} MB/s", r.mb_per_sec())),
            Metric::Latency(h) => (
                "latency",
                format!("p50 {:.0}us p99 {:.0}us n={}", h.p50().as_micros_f64(), h.p99().as_micros_f64(), h.count()),
            ),
            Metric::Gauge(v) => ("gauge", format!("{v:.3}")),
        };
        agg.row(vec![key.dotted(), kind.to_string(), value]);
    }
    out.push_str(&agg.render());
    out.push('\n');
    let mut per_blade = Table::new(
        "per-blade ledger",
        &["blade", "local hits", "remote hits", "misses", "evictions", "cpu util"],
    );
    for b in 0..4u32 {
        use ys_obs::MetricKey;
        per_blade.row(vec![
            b.to_string(),
            reg.counter_value(&MetricKey::scoped("cache", b, "local_hits")).to_string(),
            reg.counter_value(&MetricKey::scoped("cache", b, "remote_hits")).to_string(),
            reg.counter_value(&MetricKey::scoped("cache", b, "misses")).to_string(),
            reg.counter_value(&MetricKey::scoped("cache", b, "evictions")).to_string(),
            format!("{:.3}", reg.gauge_value(&MetricKey::scoped("core", b, "cpu_util")).unwrap_or(0.0)),
        ]);
    }
    out.push_str(&per_blade.render());
    out.push_str(&format!("\ntrace: {} events captured, {} dropped\n", events.len(), dropped));
    out.push('\n');
    out.push_str(&qos_chargeback());
    out
}

/// A two-tenant run with `ys-qos` admission control on, rendered as the
/// per-tenant chargeback ledger: QoS class x provisioned/actual capacity,
/// plus how often the policy throttled or shed each tenant.
fn qos_chargeback() -> String {
    use ys_qos::{QosClass, QosConfig, TenantSpec};
    const PAGE: u64 = 64 * 1024;
    let policy = QosConfig::new()
        .with_tenant(TenantSpec::new(1, "prod", QosClass::Premium).weight(2))
        .with_tenant(
            TenantSpec::new(2, "batch", QosClass::Scavenger)
                .rate_mb_per_sec(8)
                .burst_bytes(512 * 1024),
        );
    let mut c = BladeCluster::new(
        ClusterConfig::default().with_blades(2).with_disks(8).with_qos(policy),
    );
    let prod = c.create_volume("prod", 1, 1 << 30).expect("volume");
    let batch = c.create_volume("batch", 2, 2 << 30).expect("volume");
    let mut t = SimTime::ZERO;
    for i in 0..200u64 {
        if let Ok(d) = c.write_as(t, 1, 0, prod, (i % 64) * PAGE, PAGE, 2, Retention::Normal) {
            t = d.done;
        }
        // The batch tenant pushes 4x its token rate: part throttled, part shed.
        let _ = c.write_as(t, 2, 1, batch, (i % 64) * 4 * PAGE, 4 * PAGE, 2, Retention::Normal);
    }
    let mut table = Table::new(
        "per-tenant QoS chargeback (2 tenants, scavenger pushing 4x its token rate)",
        &["tenant", "class", "provisioned MiB", "actual MiB", "throttled", "shed"],
    );
    for line in c.chargeback() {
        table.row(vec![
            line.tenant.to_string(),
            QosClass::from_id(line.qos_class).map(|q| q.name()).unwrap_or("-").to_string(),
            (line.provisioned_bytes >> 20).to_string(),
            (line.actual_bytes >> 20).to_string(),
            line.throttled_requests.to_string(),
            line.shed_requests.to_string(),
        ]);
    }
    let mut out = table.render();
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn breakdown_renders_subsystem_and_blade_tables() {
        let text = super::breakdown();
        assert!(text.contains("aggregate metrics by subsystem"));
        assert!(text.contains("per-blade ledger"));
        assert!(text.contains("cache.hit_ratio"));
        assert!(text.contains("trace:"));
    }

    #[test]
    fn chargeback_table_shows_class_and_shed_counts() {
        let text = super::qos_chargeback();
        assert!(text.contains("per-tenant QoS chargeback"));
        assert!(text.contains("premium"));
        assert!(text.contains("scavenger"));
        // The overdriven batch tenant must show policed requests.
        let batch_row = text.lines().find(|l| l.trim_start().starts_with("2 ")).expect("batch row");
        let cols: Vec<&str> = batch_row.split_whitespace().collect();
        let throttled: u64 = cols[cols.len() - 2].parse().expect("throttled");
        let shed: u64 = cols[cols.len() - 1].parse().expect("shed");
        assert!(throttled + shed > 0, "batch tenant was policed: {batch_row}");
    }
}

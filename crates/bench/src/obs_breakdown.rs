//! The `--obs` appendix of the bench report: one instrumented reference
//! run with a `ys-obs` metrics registry attached, rendered as
//! per-subsystem and per-blade breakdowns.
//!
//! Kept separate from the experiment bodies so the default report path is
//! byte-identical with observability off — tracing and collection happen
//! only in here.

use ys_cache::Retention;
use ys_core::{BladeCluster, ClusterConfig};
use ys_obs::{collect_cluster, record_trace_drops, Metric, MetricsRegistry, Table};
use ys_proto::Workload;
use ys_simcore::time::SimTime;

/// Run a mixed Zipf workload on an instrumented cluster and render the
/// registry grouped by subsystem, plus the per-blade ledger.
pub fn breakdown() -> String {
    const OPS: usize = 1200;
    let mut c = BladeCluster::new(ClusterConfig::default().with_blades(4).with_disks(8));
    c.enable_tracing(8192);
    let vol = c.create_volume("obs", 0, 4 << 30).expect("volume");
    let mut wl = Workload::zipf(1 << 30, 64 * 1024, 1.0, 0.3, 7);
    let mut t = SimTime::ZERO;
    for i in 0..OPS {
        let op = wl.next_op();
        let done = if op.write {
            c.write(t, i % 8, vol, op.offset, op.len, 2, Retention::Normal).expect("write")
        } else {
            c.read(t, i % 8, vol, op.offset, op.len).expect("read")
        };
        t = done.done;
    }
    let mut reg = MetricsRegistry::new();
    collect_cluster(&mut reg, &c, t);
    let (events, dropped) = c.take_trace();
    record_trace_drops(&mut reg, "cluster", dropped);

    let mut out = String::from("================================================================\n");
    out.push_str("OBS per-subsystem breakdown (reference run: Zipf 1.0, 1200 ops, 30% writes)\n");
    out.push_str("================================================================\n");
    let mut agg = Table::new("aggregate metrics by subsystem", &["metric", "kind", "value"]);
    for (key, metric) in reg.iter() {
        if key.blade.is_some() {
            continue;
        }
        let (kind, value) = match metric {
            Metric::Counter(c) => (
                "counter",
                if c.bytes() > 0 { format!("{} ({} B)", c.count(), c.bytes()) } else { c.count().to_string() },
            ),
            Metric::Rate(r) => ("rate", format!("{:.2} MB/s", r.mb_per_sec())),
            Metric::Latency(h) => (
                "latency",
                format!("p50 {:.0}us p99 {:.0}us n={}", h.p50().as_micros_f64(), h.p99().as_micros_f64(), h.count()),
            ),
            Metric::Gauge(v) => ("gauge", format!("{v:.3}")),
        };
        agg.row(vec![key.dotted(), kind.to_string(), value]);
    }
    out.push_str(&agg.render());
    out.push('\n');
    let mut per_blade = Table::new(
        "per-blade ledger",
        &["blade", "local hits", "remote hits", "misses", "evictions", "cpu util"],
    );
    for b in 0..4u32 {
        use ys_obs::MetricKey;
        per_blade.row(vec![
            b.to_string(),
            reg.counter_value(&MetricKey::scoped("cache", b, "local_hits")).to_string(),
            reg.counter_value(&MetricKey::scoped("cache", b, "remote_hits")).to_string(),
            reg.counter_value(&MetricKey::scoped("cache", b, "misses")).to_string(),
            reg.counter_value(&MetricKey::scoped("cache", b, "evictions")).to_string(),
            format!("{:.3}", reg.gauge_value(&MetricKey::scoped("core", b, "cpu_util")).unwrap_or(0.0)),
        ]);
    }
    out.push_str(&per_blade.render());
    out.push_str(&format!("\ntrace: {} events captured, {} dropped\n\n", events.len(), dropped));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn breakdown_renders_subsystem_and_blade_tables() {
        let text = super::breakdown();
        assert!(text.contains("aggregate metrics by subsystem"));
        assert!(text.contains("per-blade ledger"));
        assert!(text.contains("cache.hit_ratio"));
        assert!(text.contains("trace:"));
    }
}

//! Ablations: the design choices DESIGN.md calls out, toggled off one at a
//! time to show what each buys.
//!
//! * **A1 prefetch** — §4's readahead on a cold sequential stream;
//! * **A2 rebuild batch size** — why rebuilds issue large sequential
//!   member I/O instead of per-row reads;
//! * **A3 coherent peer supply** — §2.2's remote cache hits vs.
//!   partitioned-controller timing (every non-local page from disk).

use ys_cache::Retention;
use ys_core::{BladeCluster, ClusterConfig, Rebuilder};
use ys_simcore::stats::Series;
use ys_simcore::time::SimTime;
use ys_simdisk::DiskId;

const KB: u64 = 1 << 10;
const MB: u64 = 1 << 20;

/// A1 — sequential stream rate vs. prefetch depth.
pub fn a1_prefetch() -> Vec<Series> {
    let mut rate = Series::new("A1 cold sequential read MB/s vs prefetch depth (pages)");
    for depth in [0usize, 2, 4, 8, 16] {
        let cfg = ClusterConfig::default().with_blades(4).with_disks(8).with_prefetch(depth);
        let mut c = BladeCluster::new(cfg);
        let vol = c.create_volume("seq", 0, 1 << 30).unwrap();
        let total = 32 * MB;
        let mut t = SimTime::ZERO;
        for off in (0..total).step_by(MB as usize) {
            t = c.write(t, 0, vol, off, MB, 1, Retention::Normal).unwrap().done;
        }
        let start = c.drain().max(t);
        for b in 0..4 {
            c.fail_blade(start, b);
            c.repair_blade(b);
        }
        let mut t = start;
        for off in (0..total).step_by((64 * KB) as usize) {
            t = c.read(t, 0, vol, off, 64 * KB).unwrap().done;
        }
        let mbps = total as f64 / 1e6 / t.since(start).as_secs_f64();
        rate.push(depth as f64, mbps);
    }
    vec![rate]
}

/// A2 — rebuild time vs. batch size (rows per worker claim).
pub fn a2_rebuild_batch() -> Vec<Series> {
    let mut time = Series::new("A2 rebuild time (s) vs batch rows (4 workers)");
    for batch in [1u64, 8, 64, 256] {
        let mut c = BladeCluster::new(ClusterConfig::default().with_blades(4).with_disks(8));
        c.fail_disk(DiskId(2));
        let mut r = Rebuilder::new(&mut c, SimTime::ZERO, DiskId(2), 128 * MB, &[0, 1, 2, 3], batch);
        let done = r.run(&mut c).unwrap();
        time.push(batch as f64, done.as_secs_f64());
    }
    vec![time]
}

/// A3 — Zipf read throughput with and without coherent peer supply.
pub fn a3_remote_supply() -> Vec<Series> {
    let mut tput = Series::new("A3 Zipf read MB/s: 0=coherent peer supply 1=partitioned (disk on non-local)");
    for (i, coherent) in [true, false].into_iter().enumerate() {
        let mut cfg = ClusterConfig::default().with_blades(8).with_disks(16).with_clients(16);
        if !coherent {
            cfg = cfg.without_remote_supply();
        }
        let mut c = BladeCluster::new(cfg);
        let vol = c.create_volume("v", 0, 1 << 30).unwrap();
        let set = 64 * MB;
        let io = 64 * KB;
        let mut t = SimTime::ZERO;
        for off in (0..set).step_by(io as usize) {
            t = c.write(t, 0, vol, off, io, 1, Retention::Normal).unwrap().done;
        }
        let base = c.drain().max(t);
        let mut wl = ys_proto::Workload::zipf(set, io, 0.9, 0.0, 7);
        let r = crate::driver::closed_loop(16, 200, |client, now| {
            let op = wl.next_op();
            let shifted = SimTime(base.nanos() + now.nanos());
            let done = c.read(shifted, client, vol, op.offset, op.len).unwrap().done;
            (SimTime(done.nanos() - base.nanos()), op.len)
        });
        tput.push(i as f64, r.mb_per_sec());
    }
    vec![tput]
}

/// All ablations, for the report binary.
pub fn all() -> Vec<(&'static str, Vec<Series>)> {
    vec![
        ("A1 prefetch ablation", a1_prefetch()),
        ("A2 rebuild batch-size ablation", a2_rebuild_batch()),
        ("A3 coherent-peer-supply ablation", a3_remote_supply()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_monotonically_helps_cold_sequential() {
        let s = &a1_prefetch()[0];
        let off = s.points[0].1;
        let deep = s.points.last().unwrap().1;
        assert!(deep > off * 1.2, "prefetch 16 ({deep:.0} MB/s) should beat none ({off:.0})");
    }

    #[test]
    fn rebuild_batch_size_has_a_sweet_spot() {
        // Tiny batches pay per-claim latency; huge batches leave the tail
        // imbalanced across workers. The middle wins.
        let s = &a2_rebuild_batch()[0];
        let first = s.points[0].1;
        let last = s.points.last().unwrap().1;
        let best = s.points.iter().map(|&(_, y)| y).fold(f64::INFINITY, f64::min);
        assert!(best < first, "some batch beats 1-row ({first}s)");
        assert!(best < last, "some batch beats the largest ({last}s)");
    }

    #[test]
    fn coherent_supply_beats_partitioned() {
        let s = &a3_remote_supply()[0];
        assert!(s.points[0].1 > s.points[1].1, "coherence must pay: {:?}", s.points);
    }
}

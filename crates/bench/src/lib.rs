//! `ys-bench` — the experiment suite reproducing every figure and
//! quantitative claim of the paper (see DESIGN.md §4 for the index).
//!
//! * [`driver`] — the closed-loop multi-client workload driver;
//! * [`experiments`] — E1–E12, each returning the printed series;
//! * `src/bin/report.rs` — runs the suite and prints the tables recorded
//!   in EXPERIMENTS.md;
//! * `benches/experiments.rs` — Criterion wall-time benches over the same
//!   experiment bodies.

pub mod ablations;
pub mod driver;
pub mod experiments;
pub mod obs_breakdown;
pub mod report;
pub mod spec;

pub use driver::{closed_loop, RunResult};

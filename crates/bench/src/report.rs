//! The report suite body, factored out of `src/bin/report.rs` so the
//! library stays clock-free: the binary injects an elapsed-seconds reader
//! and the wall-clock exemption covers only that thin shim.

use std::io::Write;

/// Run the experiment suite (optionally filtered / with the ys-obs
/// breakdown) and write every series to `out`. `elapsed` is sampled once
/// for the trailing footer; pass `|| 0.0` for byte-stable output.
pub fn run_report(out: &mut impl Write, args: &[String], elapsed: impl Fn() -> f64) {
    let obs = args.iter().any(|a| a == "--obs");
    let filter: Vec<String> =
        args.iter().filter(|a| a.as_str() != "--obs").map(|s| s.to_uppercase()).collect();
    let mut sections = crate::experiments::all_filtered(&filter);
    if filter.is_empty() || filter.iter().any(|f| f.starts_with('A')) {
        let abl = crate::ablations::all();
        sections.extend(abl.into_iter().filter(|(name, _)| {
            filter.is_empty() || filter.iter().any(|f| name.starts_with(f.as_str()))
        }));
    }
    for (name, series_list) in sections {
        writeln!(out, "================================================================").unwrap();
        writeln!(out, "{name}").unwrap();
        writeln!(out, "================================================================").unwrap();
        for s in series_list {
            write!(out, "{}", s.render("x", "y")).unwrap();
        }
        writeln!(out).unwrap();
    }
    if obs {
        write!(out, "{}", crate::obs_breakdown::breakdown()).unwrap();
    }
    writeln!(out, "(suite completed in {:.1}s)", elapsed()).unwrap();
}

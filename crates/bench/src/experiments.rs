//! The experiment suite: one function per figure/claim in the paper, each
//! returning the labelled series the report binary prints and
//! EXPERIMENTS.md records.
//!
//! Every experiment is deterministic: `(config, seed)` fully determines the
//! output. Sizes are chosen so the whole suite runs in seconds of wall
//! time while exercising thousands-to-millions of simulated operations.

use crate::driver::closed_loop;
use ys_cache::Retention;
use ys_core::{
    deliver_stream, run_service, BladeCluster, ClusterConfig, EncryptionConfig, FastPathConfig, LegacyArray,
    LegacyConfig, LoadBalance, NetStorage, NetStorageConfig, Rebuilder, ServiceJob,
};
use ys_geo::{SiteId, SiteTopology};
use ys_pfs::{FilePolicy, GeoMode, GeoPolicy};
use ys_proto::Workload;
use ys_security::{InitiatorId, LunMask};
use ys_simcore::stats::Series;
use ys_simcore::time::{SimDuration, SimTime};
use ys_simdisk::DiskId;
use ys_simnet::catalog;
use ys_virt::{PhysicalPool, VolumeKind, VolumeManager};

const KB: u64 = 1 << 10;
const MB: u64 = 1 << 20;
const GB: u64 = 1 << 30;

/// E1 / Figure 1 — single-stream rate vs striping blade count.
///
/// Paper claim: 4 blades × 2 × 2 Gb/s FC feed a ~10 Gb/s stream through a
/// common PCI-X bus and 10 GbE port.
pub fn e1_striping() -> Vec<Series> {
    let mut rate = Series::new("E1 stream rate (Gb/s) vs blades");
    let mut bus = Series::new("E1 PCI-X bus utilization vs blades");
    for blades in 1..=8usize {
        let cfg = FastPathConfig { blades, ..FastPathConfig::default() };
        let r = deliver_stream(&cfg, GB);
        rate.push(blades as f64, r.gbit_per_sec);
        bus.push(blades as f64, r.bus_utilization);
    }
    vec![rate, bus]
}

/// E2 / Figure 2 — the secure multi-tenant pool: LUN-mask isolation plus
/// the throughput cost of each optional security layer.
pub fn e2_secure_pool() -> Vec<Series> {
    // Isolation: two tenants on one pool; cross-tenant access must fail.
    let mut mask = LunMask::new();
    let (alice, bob) = (InitiatorId(1), InitiatorId(2));
    mask.grant(alice, ys_virt::VolumeId(0));
    mask.grant(bob, ys_virt::VolumeId(1));
    let mut isolation = Series::new("E2 cross-tenant accesses denied (of 100 attempts)");
    let denied = (0..100)
        .filter(|i| {
            let initiator = if i % 2 == 0 { alice } else { bob };
            let target = ys_virt::VolumeId(1 - (i % 2) as u32); // the OTHER tenant's volume
            mask.check_access(initiator, target).is_err()
        })
        .count();
    isolation.push(100.0, denied as f64);

    // Throughput under security layers: multi-tenant 64 KiB mixed I/O.
    let mut tput = Series::new("E2 throughput (MB/s): 0=off 1=mask+auth 2=at-rest(hw) 3=full(hw) 4=full(sw)");
    let configs = [
        EncryptionConfig::off(),
        EncryptionConfig::off(), // mask+auth cost is control-path only
        EncryptionConfig { at_rest: true, in_transit: false, hardware_assist: true },
        EncryptionConfig::full_hw(),
        EncryptionConfig::full_sw(),
    ];
    for (i, enc) in configs.iter().enumerate() {
        let mut c = BladeCluster::new(
            ClusterConfig::default().with_blades(4).with_disks(16).with_clients(8).with_encryption(*enc),
        );
        let v0 = c.create_volume("alice", 1, 4 * GB).unwrap();
        let v1 = c.create_volume("bob", 2, 4 * GB).unwrap();
        let mut wl = Workload::random(512 * MB, 64 * KB, 0.5, 42);
        let r = closed_loop(8, 400, |client, now| {
            let op = wl.next_op();
            let vol = if client % 2 == 0 { v0 } else { v1 };
            let done = if op.write {
                c.write(now, client, vol, op.offset, op.len, 2, Retention::Normal).unwrap().done
            } else {
                c.read(now, client, vol, op.offset, op.len).unwrap().done
            };
            (done, op.len)
        });
        tput.push(i as f64, r.mb_per_sec());
    }
    vec![isolation, tput]
}

/// E3 / Figure 3 — the three-site national-lab deployment with per-tier
/// file policies: write latency per tier and async RPO behaviour.
pub fn e3_geo_deploy() -> Vec<Series> {
    let mut ns = NetStorage::new(NetStorageConfig {
        site_cluster: ClusterConfig::default().with_blades(4).with_disks(8).with_clients(4),
        ..NetStorageConfig::default()
    });
    let home = SiteId(0);
    // Tier policies: metro sync, continental sync (min distance), async far, none.
    let tiers: Vec<(&str, FilePolicy)> = vec![
        ("local-only", FilePolicy { geo: GeoPolicy::none(), ..FilePolicy::default() }),
        ("sync-metro", FilePolicy { geo: GeoPolicy::sync(2), ..FilePolicy::default() }),
        ("sync-continental", FilePolicy {
            geo: GeoPolicy {
                mode: GeoMode::Synchronous,
                site_copies: 2,
                min_distance_km: 500.0,
                preferred_sites: vec![],
            },
            ..FilePolicy::default()
        }),
        ("async-far", FilePolicy { geo: GeoPolicy::async_(2), ..FilePolicy::default() }),
    ];
    let mut lat = Series::new("E3 write latency (ms) per tier: 0=local 1=sync-metro 2=sync-continental 3=async");
    let mut t = SimTime::ZERO;
    for (i, (name, pol)) in tiers.iter().enumerate() {
        let path = format!("/{name}");
        ns.create_file(&path, pol.clone(), home).unwrap();
        let mut total = SimDuration::ZERO;
        let n = 20u64;
        for k in 0..n {
            let w = ns.write_file(t, home, 0, &path, k * 256 * KB, 256 * KB).unwrap();
            total += w.latency;
            t = w.done;
        }
        lat.push(i as f64, total.as_millis_f64() / n as f64);
    }
    // Async backlog drains once shipped.
    let mut backlog = Series::new("E3 async backlog (writes) before/after shipping");
    let before = ns.async_backlog(home, SiteId(1)).0 + ns.async_backlog(home, SiteId(2)).0;
    backlog.push(0.0, before as f64);
    ns.ship_async(t, u64::MAX).unwrap();
    let after = ns.async_backlog(home, SiteId(1)).0 + ns.async_backlog(home, SiteId(2)).0;
    backlog.push(1.0, after as f64);
    vec![lat, backlog]
}

/// E4 — aggregate throughput vs blade count on a shared, unpartitioned
/// volume (§2.1), with the dual-controller legacy array as the baseline.
pub fn e4_scaling() -> Vec<Series> {
    let clients = 32usize;
    let working_set = 128 * MB; // hot set: fits even one blade's cache
    let io = 64 * KB;
    let mut tput = Series::new("E4 aggregate read MB/s vs blades (shared volume, no partitioning)");
    for blades in [1usize, 2, 4, 8, 12, 16] {
        let mut c = BladeCluster::new(
            ClusterConfig::default().with_blades(blades).with_disks(16).with_clients(clients),
        );
        let vol = c.create_volume("shared", 0, 4 * GB).unwrap();
        // Warm the working set.
        let mut t = SimTime::ZERO;
        for off in (0..working_set).step_by(io as usize) {
            t = c.write(t, 0, vol, off, io, 1, Retention::Normal).unwrap().done;
        }
        let t_warm = c.drain().max(t);
        let mut wl = Workload::random(working_set, io, 0.0, 7);
        let r = closed_loop(clients, 300, |client, now| {
            let op = wl.next_op();
            let done = c.read(t_warm + now.since(SimTime::ZERO), client, vol, op.offset, op.len).unwrap().done;
            (SimTime(done.nanos() - t_warm.nanos()), op.len)
        });
        tput.push(blades as f64, r.mb_per_sec());
    }
    // Legacy baseline: the best a traditional array offers is 2 controllers.
    let mut legacy = Series::new("E4 baseline: legacy dual-controller MB/s (flat)");
    for controllers in [1usize, 2] {
        let mut a = LegacyArray::new(LegacyConfig { controllers, ..LegacyConfig::default() });
        let mut t = SimTime::ZERO;
        for off in (0..working_set).step_by(io as usize) {
            a.write(t, 0, off, io);
            t = SimTime(t.nanos() + 1_000_000);
        }
        let mut wl = Workload::random(working_set, io, 0.0, 7);
        let base = t;
        let r = closed_loop(clients, 300, |_client, now| {
            let op = wl.next_op();
            let lat = a.read(base + now.since(SimTime::ZERO), 0, op.offset, op.len).unwrap();
            (now + lat, op.len)
        });
        legacy.push(controllers as f64, r.mb_per_sec());
    }
    vec![tput, legacy]
}

/// E5 — hot-spot behaviour under Zipf skew: the pooled coherent cache with
/// load balancing vs volume-pinned controllers (§2.2, §6.3).
pub fn e5_hotspot() -> Vec<Series> {
    let volumes = 8usize;
    let clients = 16usize;
    let io = 64 * KB;
    let per_vol = 64 * MB;
    let mut tput = Series::new("E5 MB/s: 0=pooled(RR) 1=pooled(affinity) 2=pinned-by-volume");
    let mut spread = Series::new("E5 blade utilization max/mean ratio (hot-spot indicator)");
    let mut p99s = Series::new("E5 read p99 (ms)");
    let mut dir_series: Option<Series> = None;
    for (i, lb) in [LoadBalance::RoundRobin, LoadBalance::PageAffinity, LoadBalance::PinnedByVolume]
        .into_iter()
        .enumerate()
    {
        let mut c = BladeCluster::new(
            ClusterConfig::default()
                .with_blades(8)
                .with_disks(16)
                .with_clients(clients)
                .with_load_balance(lb),
        );
        let vols: Vec<_> = (0..volumes).map(|v| c.create_volume(&format!("v{v}"), 0, GB).unwrap()).collect();
        // Warm all volumes.
        let mut t = SimTime::ZERO;
        for &v in &vols {
            for off in (0..per_vol).step_by(io as usize) {
                t = c.write(t, 0, v, off, io, 1, Retention::Normal).unwrap().done;
            }
        }
        let t_warm = c.drain().max(t);
        // Zipf volume popularity: volume 0 is scorching.
        let zipf = ys_simcore::Zipf::new(volumes, 1.1);
        let mut rng = ys_simcore::Rng::new(99);
        let mut off_wl = Workload::random(per_vol, io, 0.0, 5);
        let r = closed_loop(clients, 250, |client, now| {
            let v = vols[zipf.sample(&mut rng)];
            let op = off_wl.next_op();
            let shifted = SimTime(t_warm.nanos() + now.nanos());
            let done = c.read(shifted, client, v, op.offset, op.len).unwrap().done;
            (SimTime(done.nanos() - t_warm.nanos()), op.len)
        });
        tput.push(i as f64, r.mb_per_sec());
        let until = SimTime(t_warm.nanos() + r.makespan.nanos());
        let utils = c.blade_utilizations(until);
        let max = utils.iter().cloned().fold(0.0, f64::max);
        let mean = utils.iter().sum::<f64>() / utils.len() as f64;
        spread.push(i as f64, if mean > 0.0 { max / mean } else { 0.0 });
        p99s.push(i as f64, c.stats.read_latency.p99().as_millis_f64());
        if i == 0 {
            // Directory-shard load (§2.2: the coherence directory itself is
            // hash-sharded across blades so metadata work scales too).
            let lookups = c.cache.directory().shard_lookups().to_vec();
            let max = *lookups.iter().max().unwrap_or(&0) as f64;
            let mean = lookups.iter().sum::<u64>() as f64 / lookups.len().max(1) as f64;
            let mut dir = Series::new("E5 coherence-directory shard load max/mean (pooled RR)");
            dir.push(0.0, if mean > 0.0 { max / mean } else { 0.0 });
            dir_series = Some(dir);
        }
    }
    let mut out = vec![tput, spread, p99s];
    if let Some(d) = dir_series {
        out.push(d);
    }
    out
}

/// E6 — DMSD thin provisioning vs fixed partitions (§3).
pub fn e6_dmsd() -> Vec<Series> {
    let extent = MB;
    let pool_extents = 1024 * 1024; // 1 TiB pool
    let volumes = 100usize;
    let provisioned_each = 50 * 1024; // 50 GiB provisioned per volume (5x overcommit)
    let mut rng = ys_simcore::Rng::new(2002);

    let mut m = VolumeManager::new(PhysicalPool::new(pool_extents, extent));
    let mut fixed_demand = 0u64;
    let mut actual_total = 0u64;
    for v in 0..volumes {
        let id = m.create(format!("proj{v}"), v as u32, VolumeKind::DemandMapped, provisioned_each).unwrap();
        // Log-normal utilization, clamped: most projects use a few %, some
        // use a lot.
        let frac = (rng.lognormal(-3.5, 1.0)).min(0.9);
        let used = ((provisioned_each as f64) * frac) as u64;
        if used > 0 {
            m.write(id, 0, used).unwrap();
        }
        actual_total += used;
        fixed_demand += provisioned_each;
    }
    let mut usage = Series::new("E6 pool extents: 0=fixed-provisioning demand 1=DMSD actual 2=pool size");
    usage.push(0.0, fixed_demand as f64);
    usage.push(1.0, m.pool().used_extents() as f64);
    usage.push(2.0, pool_extents as f64);

    // Charge-back accuracy: billed == actually consumed.
    let lines = m.chargeback();
    let billed: u64 = lines.iter().map(|l| l.actual_bytes).sum();
    let mut cb = Series::new("E6 chargeback: billed bytes / consumed bytes (must be 1.0)");
    cb.push(0.0, billed as f64 / (actual_total * extent).max(1) as f64);

    // Space reclamation: unmap half of each volume's data.
    let used_before = m.pool().used_extents();
    let vol_ids: Vec<_> = m.volumes().map(|v| v.id).collect();
    for id in vol_ids {
        let mapped = m.volume(id).unwrap().mapped_extents();
        if mapped > 1 {
            m.unmap(id, 0, mapped / 2).unwrap();
        }
    }
    let mut reclaim = Series::new("E6 pool extents before/after unmapping half");
    reclaim.push(0.0, used_before as f64);
    reclaim.push(1.0, m.pool().used_extents() as f64);
    assert_eq!(actual_total, fixed_demand.min(actual_total)); // sanity
    vec![usage, cb, reclaim]
}

/// E7 — N-way write replication: latency cost vs N, and survival of N−1
/// blade failures (§6.1).
pub fn e7_nway() -> Vec<Series> {
    let mut lat = Series::new("E7 mean write latency (ms) vs replication N");
    let mut survival = Series::new("E7 dirty pages lost after N-1 blade failures (must be 0)");
    for n in 1..=4usize {
        let mut c = BladeCluster::new(ClusterConfig::default().with_blades(6).with_disks(12));
        let vol = c.create_volume("t", 0, 4 * GB).unwrap();
        let mut t = SimTime::ZERO;
        let mut total = SimDuration::ZERO;
        let ops = 100u64;
        for i in 0..ops {
            let w = c.write(t, 0, vol, i * 64 * KB, 64 * KB, n, Retention::Normal).unwrap();
            total += w.latency;
            t = w.done;
        }
        lat.push(n as f64, total.as_millis_f64() / ops as f64);
        // Kill N−1 blades while the cache is still dirty.
        let mut lost = 0usize;
        for b in 0..n.saturating_sub(1) {
            lost += c.fail_blade(t, b).lost.len();
        }
        survival.push(n as f64, lost as f64);
    }
    // The contrast: N=1 with one failure loses data.
    let mut baseline = Series::new("E7 baseline: N=1 pages lost after 1 failure per blade");
    let mut c = BladeCluster::new(ClusterConfig::default().with_blades(4).with_disks(12));
    let vol = c.create_volume("t", 0, GB).unwrap();
    let mut t = SimTime::ZERO;
    for i in 0..40u64 {
        t = c.write(t, 0, vol, i * 64 * KB, 64 * KB, 1, Retention::Normal).unwrap().done;
    }
    let mut lost = 0;
    for b in 0..4 {
        lost += c.fail_blade(t, b).lost.len();
    }
    baseline.push(1.0, lost as f64);
    vec![lat, survival, baseline]
}

/// E8 — distributed rebuild: time vs participating blades, and the effect
/// of a controller dying mid-rebuild (§2.4, §6.3).
pub fn e8_rebuild() -> Vec<Series> {
    let region = 256 * MB;
    let mut times = Series::new("E8 rebuild time (s) vs participating blades");
    for workers in [1usize, 2, 4, 8] {
        let mut c = BladeCluster::new(ClusterConfig::default().with_blades(8).with_disks(8));
        c.fail_disk(DiskId(3));
        let blades: Vec<usize> = (0..workers).collect();
        let mut r = Rebuilder::new(&mut c, SimTime::ZERO, DiskId(3), region, &blades, 64);
        let done = r.run(&mut c).unwrap();
        times.push(workers as f64, done.as_secs_f64());
    }
    // Worker failure mid-rebuild: completes anyway, slightly later.
    let mut failover = Series::new("E8 rebuild time (s): 0=4 workers 1=4 workers, one dies midway");
    for kill_one in [false, true] {
        let mut c = BladeCluster::new(ClusterConfig::default().with_blades(8).with_disks(8));
        c.fail_disk(DiskId(3));
        let mut r = Rebuilder::new(&mut c, SimTime::ZERO, DiskId(3), region, &[0, 1, 2, 3], 32);
        let mut steps = 0;
        while r.step(&mut c).unwrap() {
            steps += 1;
            if kill_one && steps == 8 {
                r.fail_worker(0);
            }
        }
        failover.push(kill_one as u64 as f64, r.finished_at().unwrap().as_secs_f64());
    }
    vec![times, failover]
}

/// E9 — geographic replication modes: write latency vs distance for sync
/// vs async, and the loss window after a site cut (§6.2, §7.2).
pub fn e9_georep() -> Vec<Series> {
    let mut sync_lat = Series::new("E9 sync write latency (ms) vs one-way distance (km)");
    let mut async_lat = Series::new("E9 async write latency (ms) vs one-way distance (km)");
    for km in [10.0, 100.0, 500.0, 1000.0, 3000.0, 7000.0] {
        let mut topo = SiteTopology::new(&["a", "b"]);
        topo.connect(SiteId(0), SiteId(1), catalog::oc192(), km);
        let mut ns = NetStorage::new(NetStorageConfig {
            site_cluster: ClusterConfig::default().with_blades(2).with_disks(6).with_clients(2),
            topology: topo,
            ..NetStorageConfig::default()
        });
        let sp = FilePolicy { geo: GeoPolicy::sync(2), ..FilePolicy::default() };
        let ap = FilePolicy { geo: GeoPolicy::async_(2), ..FilePolicy::default() };
        ns.create_file("/sync", sp, SiteId(0)).unwrap();
        ns.create_file("/async", ap, SiteId(0)).unwrap();
        let mut t = SimTime::ZERO;
        let (mut stot, mut atot) = (SimDuration::ZERO, SimDuration::ZERO);
        let n = 20u64;
        for i in 0..n {
            let w = ns.write_file(t, SiteId(0), 0, "/sync", i * 64 * KB, 64 * KB).unwrap();
            stot += w.latency;
            t = w.done;
            let w = ns.write_file(t, SiteId(0), 0, "/async", i * 64 * KB, 64 * KB).unwrap();
            atot += w.latency;
            t = w.done;
        }
        sync_lat.push(km, stot.as_millis_f64() / n as f64);
        async_lat.push(km, atot.as_millis_f64() / n as f64);
    }

    // Loss window: 100 async writes, ship 50, cut the site.
    let mut loss = Series::new("E9 writes lost at site cut: 0=sync 1=async(half-shipped)");
    {
        let mut ns = NetStorage::new(NetStorageConfig {
            site_cluster: ClusterConfig::default().with_blades(2).with_disks(6).with_clients(2),
            ..NetStorageConfig::default()
        });
        let sp = FilePolicy { geo: GeoPolicy::sync(2), ..FilePolicy::default() };
        ns.create_file("/s", sp, SiteId(0)).unwrap();
        let mut t = SimTime::ZERO;
        for i in 0..100u64 {
            t = ns.write_file(t, SiteId(0), 0, "/s", i * 4 * KB, 4 * KB).unwrap().done;
        }
        let rep = ns.fail_site(SiteId(0));
        loss.push(0.0, rep.async_writes_lost as f64);
    }
    {
        let mut ns = NetStorage::new(NetStorageConfig {
            site_cluster: ClusterConfig::default().with_blades(2).with_disks(6).with_clients(2),
            ..NetStorageConfig::default()
        });
        let ap = FilePolicy { geo: GeoPolicy::async_(2), ..FilePolicy::default() };
        ns.create_file("/a", ap, SiteId(0)).unwrap();
        let mut t = SimTime::ZERO;
        for i in 0..100u64 {
            t = ns.write_file(t, SiteId(0), 0, "/a", i * 4 * KB, 4 * KB).unwrap().done;
        }
        // Ship roughly half the journal (each record is 4 KiB; two async
        // destinations share the budget round).
        ns.ship_async(t, 50 * 4 * KB).unwrap();
        let rep = ns.fail_site(SiteId(0));
        loss.push(1.0, rep.async_writes_lost as f64);
    }

    // File-level vs volume-level replication network cost (§7.2: "a key
    // disadvantage of current solutions is that replication is done at a
    // volume level – every byte of data is treated the same"). Ten files,
    // two of which matter; the volume-level baseline ships everything.
    let mut traffic = Series::new("E9 WAN MB shipped: 0=file-level policies 1=volume-level (everything)");
    for (i, volume_level) in [false, true].into_iter().enumerate() {
        let mut ns = NetStorage::new(NetStorageConfig {
            site_cluster: ClusterConfig::default().with_blades(2).with_disks(6).with_clients(2),
            ..NetStorageConfig::default()
        });
        for f in 0..10 {
            let pol = FilePolicy {
                geo: if volume_level || f < 2 { GeoPolicy::async_(2) } else { GeoPolicy::none() },
                ..FilePolicy::default()
            };
            ns.create_file(&format!("/f{f}"), pol, SiteId(0)).unwrap();
        }
        let mut t = SimTime::ZERO;
        for f in 0..10 {
            for k in 0..8u64 {
                t = ns.write_file(t, SiteId(0), 0, &format!("/f{f}"), k * MB, MB).unwrap().done;
            }
        }
        ns.ship_async(t, u64::MAX).unwrap();
        traffic.push(i as f64, ns.wan_bytes_total() as f64 / 1e6);
    }
    vec![sync_lat, async_lat, loss, traffic]
}

/// E10 — distributed data access: first-reference migration penalty, then
/// local-speed access; automatic replication after write invalidation
/// (§7.1).
pub fn e10_remote_access() -> Vec<Series> {
    let mut ns = NetStorage::new(NetStorageConfig {
        site_cluster: ClusterConfig::default().with_blades(4).with_disks(8).with_clients(4),
        heat_half_life_secs: 10_000.0,
        hot_threshold: 2.0,
        ..NetStorageConfig::default()
    });
    let home = SiteId(0);
    let remote = SiteId(2); // continental
    ns.create_file("/dataset.h5", FilePolicy::default(), home).unwrap();
    let mut t = SimTime::ZERO;
    t = ns.write_file(t, home, 0, "/dataset.h5", 0, 8 * MB).unwrap().done;
    let mut seq = Series::new("E10 read latency (ms) at remote site by access number");
    for i in 0..5 {
        let r = ns.read_file(t, remote, 0, "/dataset.h5", 0, 8 * MB).unwrap();
        seq.push(i as f64, r.latency.as_millis_f64());
        t = r.done;
    }
    // Writes at home invalidate the remote copy; auto-replication pushes it
    // back because the file is hot at both sites.
    let mut auto = Series::new("E10 post-invalidation: 0=first re-read(ms) 1=read after auto-replication(ms)");
    t = ns.write_file(t, home, 0, "/dataset.h5", 0, 8 * MB).unwrap().done;
    // Build heat at both sites.
    for _ in 0..4 {
        let r = ns.read_file(t, remote, 0, "/dataset.h5", 0, 8 * MB).unwrap();
        t = r.done;
        t = ns.write_file(t, home, 0, "/dataset.h5", 0, 8 * MB).unwrap().done;
    }
    let first = ns.read_file(t, remote, 0, "/dataset.h5", 0, 8 * MB).unwrap();
    auto.push(0.0, first.latency.as_millis_f64());
    t = first.done;
    // Invalidate once more, then let auto-replication push proactively.
    t = ns.write_file(t, home, 0, "/dataset.h5", 0, 8 * MB).unwrap().done;
    ns.run_auto_replication(t).unwrap();
    let pushed = ns.read_file(t + SimDuration::from_secs(1), remote, 0, "/dataset.h5", 0, 8 * MB).unwrap();
    auto.push(1.0, pushed.latency.as_millis_f64());
    vec![seq, auto]
}

/// E11 — wire-speed encryption (§5.1, §8.1): streaming throughput with
/// encryption off / hardware / software.
pub fn e11_encryption() -> Vec<Series> {
    let mut tput = Series::new("E11 streaming read MB/s: 0=off 1=at-rest+transit(hw) 2=at-rest+transit(sw)");
    for (i, enc) in [EncryptionConfig::off(), EncryptionConfig::full_hw(), EncryptionConfig::full_sw()]
        .into_iter()
        .enumerate()
    {
        let mut c = BladeCluster::new(
            ClusterConfig::default().with_blades(4).with_disks(16).with_clients(4).with_encryption(enc),
        );
        let vol = c.create_volume("media", 0, 4 * GB).unwrap();
        let total = 256 * MB;
        let mut t = SimTime::ZERO;
        for off in (0..total).step_by(MB as usize) {
            t = c.write(t, 0, vol, off, MB, 1, Retention::Normal).unwrap().done;
        }
        let start = c.drain().max(t);
        // Stream it back from cache through 4 clients.
        let chunk = MB;
        let chunks = total / chunk;
        let r = closed_loop(4, (chunks / 4) as usize, |client, now| {
            let idx = now.nanos() % chunks; // deterministic-ish spread
            let off = idx * chunk % total;
            let shifted = SimTime(start.nanos() + now.nanos());
            let done = c.read(shifted, client, vol, off, chunk).unwrap().done;
            (SimTime(done.nanos() - start.nanos()), chunk)
        });
        tput.push(i as f64, r.mb_per_sec());
    }
    vec![tput]
}

/// E12 — storage services: PIT-copy duration pinned to one blade vs
/// distributed across the cluster, and its impact on concurrent foreground
/// latency (§2.4: services "go faster and not impede active I/O").
///
/// The service is sliced and interleaved with foreground read batches in
/// virtual time, so both contend for the same disk queues. The cache is
/// deliberately small so foreground reads actually reach the disks.
pub fn e12_services() -> Vec<Series> {
    let mut svc = Series::new("E12 backup-stream duration (s): 0=pinned-1-blade 1=distributed-8");
    let mut fg = Series::new("E12 foreground read p99 (ms): 0=no-service 1=pinned 2=distributed");

    // 32 disks so the farm's aggregate rate (~1.6 GB/s) comfortably
    // exceeds one blade's 4 Gb/s disk link: a pinned service is then
    // link-bound while a distributed one is disk-bound — the §2.4 contrast.
    let cfg = || {
        ClusterConfig::default()
            .with_blades(8)
            .with_disks(32)
            .with_clients(8)
            .with_cache_pages(128) // 8 MiB/blade: foreground misses hit disk
    };
    let set = 256 * MB;
    let io = 64 * KB;
    let slice_bytes = 64 * MB;
    let total_service = 512 * MB;

    // Cold data set shared by all configs.
    let prepare = |c: &mut BladeCluster| -> (ys_virt::VolumeId, SimTime) {
        let vol = c.create_volume("t", 0, 4 * GB).unwrap();
        let mut t = SimTime::ZERO;
        for off in (0..set).step_by(MB as usize) {
            t = c.write(t, 0, vol, off, MB, 1, Retention::Normal).unwrap().done;
        }
        let base = c.drain().max(t);
        (vol, base)
    };
    let foreground_batch =
        |c: &mut BladeCluster, vol: ys_virt::VolumeId, wl: &mut Workload, base: SimTime, ops: usize| -> SimTime {
            let r = closed_loop(8, ops, |client, now| {
                let op = wl.next_op();
                let shifted = SimTime(base.nanos() + now.nanos());
                let done = c.read(shifted, client, vol, op.offset, op.len).unwrap().done;
                (SimTime(done.nanos() - base.nanos()), op.len)
            });
            base + r.makespan
        };

    // No-service reference.
    {
        let mut c = BladeCluster::new(cfg());
        let (vol, base) = prepare(&mut c);
        let mut wl = Workload::random(set, io, 0.0, 3);
        foreground_batch(&mut c, vol, &mut wl, base, 100);
        fg.push(0.0, c.stats.read_latency.p99().as_millis_f64());
    }
    for (i, blades) in [vec![0usize], (0..8).collect::<Vec<_>>()].into_iter().enumerate() {
        let mut c = BladeCluster::new(cfg());
        let (vol, base) = prepare(&mut c);
        let mut wl = Workload::random(set, io, 0.0, 3);
        // Service and foreground run on independent virtual-time cursors
        // that overlap: both contend for the same disks and blade links.
        let mut svc_t = base;
        let mut fg_t = base;
        let mut pos = 0u64;
        while pos < total_service {
            // A backup stream (§2.4): pure sequential reads shipped off the
            // blade. Pinned to one blade it is that blade's disk-link
            // bound; distributed it runs at farm rate.
            let job = ServiceJob {
                src_offset: GB + pos, // away from the foreground's region
                dst_offset: None,
                bytes: slice_bytes.min(total_service - pos),
                chunk: 16 * MB,
            };
            let res = run_service(&mut c, svc_t, job, &blades).unwrap();
            svc_t = res.finished;
            fg_t = foreground_batch(&mut c, vol, &mut wl, fg_t, 12).max(fg_t);
            pos += job.bytes;
        }
        svc.push(i as f64, svc_t.since(base).as_secs_f64());
        fg.push((i + 1) as f64, c.stats.read_latency.p99().as_millis_f64());
    }
    vec![svc, fg]
}

/// An experiment: (id, title, runner).
pub type Experiment = (&'static str, &'static str, fn() -> Vec<Series>);

/// The experiment registry: id, title, runner.
pub fn registry() -> Vec<Experiment> {
    vec![
        ("E1", "E1 Figure-1 high-speed striping", e1_striping as fn() -> Vec<Series>),
        ("E2", "E2 Figure-2 secure multi-tenant pool", e2_secure_pool),
        ("E3", "E3 Figure-3 geographic deployment", e3_geo_deploy),
        ("E4", "E4 throughput scaling vs blades", e4_scaling),
        ("E5", "E5 hot-spot: pooled vs pinned", e5_hotspot),
        ("E6", "E6 DMSD thin provisioning", e6_dmsd),
        ("E7", "E7 N-way write replication", e7_nway),
        ("E8", "E8 distributed rebuild", e8_rebuild),
        ("E9", "E9 geo replication modes", e9_georep),
        ("E10", "E10 distributed data access", e10_remote_access),
        ("E11", "E11 wire-speed encryption", e11_encryption),
        ("E12", "E12 storage services offload", e12_services),
    ]
}

/// Run the full suite in experiment order.
pub fn all() -> Vec<(&'static str, Vec<Series>)> {
    registry().into_iter().map(|(_, title, f)| (title, f())).collect()
}

/// Run a subset by experiment id (empty filter = everything).
pub fn all_filtered(filter: &[String]) -> Vec<(&'static str, Vec<Series>)> {
    registry()
        .into_iter()
        .filter(|(id, _, _)| filter.is_empty() || filter.iter().any(|f| f == id))
        .map(|(_, title, f)| (title, f()))
        .collect()
}

/// One cell of the multi-seed confidence sweep: a Zipf read workload on a
/// small cluster, fully determined by `seed`. Pure and single-threaded —
/// `ys-sweep` fans calls to this across worker threads and the result is
/// identical to calling it in a loop.
pub fn seed_run(seed: u64) -> f64 {
    let mut c = BladeCluster::new(ClusterConfig::default().with_blades(4).with_disks(8).with_clients(8));
    let vol = c.create_volume("v", 0, GB).unwrap();
    let set = 32 * MB;
    let io = 64 * KB;
    let mut t = SimTime::ZERO;
    for off in (0..set).step_by(io as usize) {
        t = c.write(t, 0, vol, off, io, 1, Retention::Normal).unwrap().done;
    }
    let base = c.drain().max(t);
    let mut wl = Workload::zipf(set, io, 0.9, 0.0, seed);
    let r = closed_loop(8, 150, |client, now| {
        let op = wl.next_op();
        let shifted = SimTime(base.nanos() + now.nanos());
        let done = c.read(shifted, client, vol, op.offset, op.len).unwrap().done;
        (SimTime(done.nanos() - base.nanos()), op.len)
    });
    r.mb_per_sec()
}

/// Multi-seed confidence sweep: per-seed aggregate MB/s for a Zipf read
/// workload, plus mean/min/max — the error bars for E5-style numbers.
///
/// This serial driver maps [`seed_run`] over the seeds in order; the
/// `ys-sweep` crate provides the thread-parallel version and a test that
/// its output is byte-identical to this one.
pub fn seed_sweep(seeds: &[u64]) -> Vec<Series> {
    let results: Vec<f64> = seeds.iter().map(|&s| seed_run(s)).collect();
    summarize_seed_sweep(seeds, &results)
}

/// Fold per-seed results into the sweep's two report series. Split out so
/// the parallel harness can merge shard outputs through the exact same
/// aggregation code path as the serial driver.
pub fn summarize_seed_sweep(seeds: &[u64], results: &[f64]) -> Vec<Series> {
    let mut per_seed = Series::new("seed sweep: MB/s per seed (parallel harness)");
    for (s, &mbps) in seeds.iter().zip(results) {
        per_seed.push(*s as f64, mbps);
    }
    let mean = results.iter().sum::<f64>() / results.len().max(1) as f64;
    let min = results.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = results.iter().cloned().fold(0.0, f64::max);
    let mut summary = Series::new("seed sweep summary: 0=mean 1=min 2=max");
    summary.push(0.0, mean);
    summary.push(1.0, min);
    summary.push(2.0, max);
    vec![per_seed, summary]
}

#[cfg(test)]
mod sweep_tests {
    use super::*;

    #[test]
    fn seed_run_is_deterministic() {
        // `ys-sweep` relies on seed_run being a pure function of its seed.
        assert_eq!(seed_run(42).to_bits(), seed_run(42).to_bits());
    }

    #[test]
    fn seed_variance_is_modest() {
        let seeds = [10u64, 20, 30, 40];
        let out = seed_sweep(&seeds);
        let mean = out[1].points[0].1;
        let min = out[1].points[1].1;
        let max = out[1].points[2].1;
        assert!(min > 0.0);
        assert!(max / min < 1.5, "seed-to-seed spread should be modest: {min}..{max} (mean {mean})");
    }
}

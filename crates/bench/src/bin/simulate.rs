//! Scenario-file simulator: run a JSON-described cluster + workload + fault
//! schedule and print the outcome as JSON.
//!
//! ```text
//! cargo run --release -p ys-bench --bin simulate -- scenario.json
//! echo '{"blades":8,"pattern":"zipf"}' | cargo run --release -p ys-bench --bin simulate
//! ```

use std::io::Read;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let text = match args.first() {
        Some(path) => std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }),
        None => {
            let mut buf = String::new();
            std::io::stdin().read_to_string(&mut buf).expect("read stdin");
            buf
        }
    };
    let spec: ys_bench::spec::SimSpec = serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("bad scenario spec: {e}");
        std::process::exit(2);
    });
    let outcome = spec.run();
    println!("{}", serde_json::to_string_pretty(&outcome).expect("serialize outcome"));
}

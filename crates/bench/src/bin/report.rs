//! Run the full experiment suite and print every series — the numbers
//! recorded in EXPERIMENTS.md. Usage:
//!
//! ```text
//! cargo run --release -p ys-bench --bin report            # all experiments
//! cargo run --release -p ys-bench --bin report -- E1 E7   # a subset
//! cargo run --release -p ys-bench --bin report -- --obs   # + ys-obs breakdown
//! ```
//!
//! `--obs` appends the per-subsystem observability breakdown from an
//! instrumented reference run; without it the output is byte-identical to
//! the uninstrumented suite.
//!
//! The suite body lives in [`ys_bench::report`]; this shim only wires up
//! stdout and the wall clock (this file is the bench crate's one
//! wall-clock-exempt location).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let started = std::time::Instant::now();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    ys_bench::report::run_report(&mut out, &args, move || started.elapsed().as_secs_f64());
}

//! Run the full experiment suite and print every series — the numbers
//! recorded in EXPERIMENTS.md. Usage:
//!
//! ```text
//! cargo run --release -p ys-bench --bin report            # all experiments
//! cargo run --release -p ys-bench --bin report -- E1 E7   # a subset
//! cargo run --release -p ys-bench --bin report -- --obs   # + ys-obs breakdown
//! ```
//!
//! `--obs` appends the per-subsystem observability breakdown from an
//! instrumented reference run; without it the output is byte-identical to
//! the uninstrumented suite.

use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let obs = args.iter().any(|a| a == "--obs");
    let filter: Vec<String> =
        args.iter().filter(|a| a.as_str() != "--obs").map(|s| s.to_uppercase()).collect();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let started = std::time::Instant::now();
    let mut sections = ys_bench::experiments::all_filtered(&filter);
    if filter.is_empty() || filter.iter().any(|f| f.starts_with('A')) {
        let abl = ys_bench::ablations::all();
        sections.extend(abl.into_iter().filter(|(name, _)| {
            filter.is_empty() || filter.iter().any(|f| name.starts_with(f.as_str()))
        }));
    }
    for (name, series_list) in sections {
        writeln!(out, "================================================================").unwrap();
        writeln!(out, "{name}").unwrap();
        writeln!(out, "================================================================").unwrap();
        for s in series_list {
            write!(out, "{}", s.render("x", "y")).unwrap();
        }
        writeln!(out).unwrap();
    }
    if obs {
        write!(out, "{}", ys_bench::obs_breakdown::breakdown()).unwrap();
    }
    writeln!(out, "(suite completed in {:.1?})", started.elapsed()).unwrap();
}

//! Property tests for the wire protocols: encode/decode identities, fuzzed
//! decoders that never panic, and workload generator guarantees.

use bytes::Bytes;
use proptest::prelude::*;
use ys_proto::{block, file, plan_stream, stream, BlockCmd, FileOp, StreamProtocol, StreamRequest, Workload};

fn arb_block_cmd() -> impl Strategy<Value = BlockCmd> {
    prop_oneof![
        (any::<u32>(), any::<u64>(), any::<u32>()).prop_map(|(lun, lba, sectors)| BlockCmd::Read { lun, lba, sectors }),
        (any::<u32>(), any::<u64>(), any::<u32>()).prop_map(|(lun, lba, sectors)| BlockCmd::Write { lun, lba, sectors }),
        (any::<u32>(), any::<u64>(), any::<u32>()).prop_map(|(lun, lba, sectors)| BlockCmd::Unmap { lun, lba, sectors }),
        Just(BlockCmd::ReportLuns),
        Just(BlockCmd::Inquiry),
    ]
}

fn arb_path() -> impl Strategy<Value = String> {
    "[a-z0-9/._-]{0,64}"
}

fn arb_file_op() -> impl Strategy<Value = FileOp> {
    prop_oneof![
        arb_path().prop_map(|path| FileOp::Lookup { path }),
        arb_path().prop_map(|path| FileOp::Create { path }),
        arb_path().prop_map(|path| FileOp::Mkdir { path }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(ino, offset, len)| FileOp::Read { ino, offset, len }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(ino, offset, len)| FileOp::Write { ino, offset, len }),
        arb_path().prop_map(|path| FileOp::Remove { path }),
        (arb_path(), arb_path()).prop_map(|(from, to)| FileOp::Rename { from, to }),
        arb_path().prop_map(|path| FileOp::GetAttr { path }),
        (arb_path(), arb_path()).prop_map(|(path, preset)| FileOp::SetPolicy { path, preset }),
        arb_path().prop_map(|path| FileOp::ReadDir { path }),
    ]
}

proptest! {
    /// decode(encode(cmd)) == cmd for every block command.
    #[test]
    fn block_roundtrip(cmd in arb_block_cmd()) {
        prop_assert_eq!(block::decode(block::encode(&cmd)).unwrap(), cmd);
    }

    /// decode(encode(op)) == op for every file op.
    #[test]
    fn file_roundtrip(op in arb_file_op()) {
        prop_assert_eq!(file::decode(file::encode(&op)).unwrap(), op);
    }

    /// Stream requests round-trip.
    #[test]
    fn stream_roundtrip(proto_pick in 0usize..4, path in "[a-z/]{0,40}", range in proptest::option::of((any::<u64>(), any::<u64>()))) {
        let protocol = [StreamProtocol::Http, StreamProtocol::Ftp, StreamProtocol::Rtsp, StreamProtocol::Dicom][proto_pick];
        let req = StreamRequest { protocol, path, range };
        prop_assert_eq!(stream::decode(stream::encode(&req)).unwrap(), req);
    }

    /// The decoders never panic on arbitrary bytes — they return errors.
    #[test]
    fn decoders_never_panic_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = block::decode(Bytes::from(data.clone()));
        let _ = file::decode(Bytes::from(data.clone()));
        let _ = stream::decode(Bytes::from(data));
    }

    /// Every truncation of a valid block frame fails to parse as the same
    /// command (no silent misparse of the payload-carrying commands).
    #[test]
    fn block_truncations_never_misparse(cmd in arb_block_cmd()) {
        let full = block::encode(&cmd);
        for cut in 1..full.len() {
            if let Ok(parsed) = block::decode(full.slice(..cut)) {
                prop_assert_ne!(parsed, cmd.clone(), "truncated frame parsed as the original");
            }
        }
    }

    /// Stream plans tile their range exactly with round-robin blades, for
    /// any geometry.
    #[test]
    fn stream_plans_tile(object in 0u64..1_000_000_000, seg in 1u64..10_000_000, blades in 1usize..16,
                         range in proptest::option::of((0u64..1_000_000_000, 0u64..1_000_000_000))) {
        let plan = plan_stream(object, range, seg, blades);
        let mut pos: Option<u64> = None;
        for s in &plan.segments {
            if let Some(p) = pos {
                prop_assert_eq!(s.offset, p, "segments contiguous");
            }
            prop_assert!(s.len > 0 && s.len <= seg);
            prop_assert!(s.blade < blades);
            pos = Some(s.offset + s.len);
        }
        let total: u64 = plan.segments.iter().map(|s| s.len).sum();
        prop_assert_eq!(total, plan.total_bytes);
    }

    /// Workloads always stay in their extent and honour alignment for any
    /// seed and pattern.
    #[test]
    fn workloads_stay_in_bounds(seed in any::<u64>(), theta in 0.0f64..1.5, wf in 0.0f64..1.0) {
        let extent = 1u64 << 26;
        let io = 4096u64;
        for mut wl in [
            Workload::sequential(extent, io, seed),
            Workload::random(extent, io, wf, seed),
            Workload::zipf(extent, io, theta, wf, seed),
        ] {
            for op in wl.take(200) {
                prop_assert!(op.offset + op.len <= extent);
                prop_assert_eq!(op.offset % io, 0);
            }
        }
    }
}

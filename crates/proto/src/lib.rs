//! `ys-proto` — access protocols and workload generation (§8).
//!
//! "Export a complete range of storage protocols ... all managed from a
//! common pool" and "export higher-level protocols, such as FTP, HTTP,
//! RSTP ... directly from the storage system onto the network."
//!
//! * [`block`] — SCSI-flavoured block commands with real wire framing;
//! * [`file`](mod@file) — NFS-flavoured file operations, including `SetPolicy` for
//!   §4's per-file extended metadata;
//! * [`stream`] — HTTP/FTP/RTSP/DICOM streaming requests and the striped
//!   segment delivery plan of Figure 1;
//! * [`workload`] — deterministic sequential / random / Zipf / mixed
//!   generators driving every experiment.

pub mod block;
pub mod file;
pub mod stream;
pub mod workload;

pub use block::{BlockCmd, BlockStatus, SECTOR};
pub use file::FileOp;
pub use stream::{plan_stream, StreamPlan, StreamProtocol, StreamRequest, StreamSegment};
pub use workload::{IoOp, Pattern, Workload};

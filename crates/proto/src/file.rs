//! The file protocol: an NFS-flavoured operation set exported by the
//! blade-integrated PFS (§4: "accessed from a host using IP, Fibre Channel,
//! or Infiniband ... including NFS, CIFS, or, when available, DAFS").

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// File-protocol requests.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FileOp {
    Lookup { path: String },
    Create { path: String },
    Mkdir { path: String },
    Read { ino: u64, offset: u64, len: u64 },
    Write { ino: u64, offset: u64, len: u64 },
    Remove { path: String },
    Rename { from: String, to: String },
    GetAttr { path: String },
    /// Set an extended-metadata policy preset by name (§4).
    SetPolicy { path: String, preset: String },
    ReadDir { path: String },
}

const OP_LOOKUP: u8 = 1;
const OP_CREATE: u8 = 2;
const OP_MKDIR: u8 = 3;
const OP_READ: u8 = 4;
const OP_WRITE: u8 = 5;
const OP_REMOVE: u8 = 6;
const OP_RENAME: u8 = 7;
const OP_GETATTR: u8 = 8;
const OP_SETPOLICY: u8 = 9;
const OP_READDIR: u8 = 10;

fn put_str(b: &mut BytesMut, s: &str) {
    b.put_u16(s.len() as u16);
    b.put_slice(s.as_bytes());
}

fn get_str(frame: &mut Bytes) -> Result<String, DecodeError> {
    if frame.remaining() < 2 {
        return Err(DecodeError::Truncated);
    }
    let n = frame.get_u16() as usize;
    if frame.remaining() < n {
        return Err(DecodeError::Truncated);
    }
    let raw = frame.split_to(n);
    String::from_utf8(raw.to_vec()).map_err(|_| DecodeError::BadString)
}

/// Frame a request.
pub fn encode(op: &FileOp) -> Bytes {
    let mut b = BytesMut::with_capacity(64);
    match op {
        FileOp::Lookup { path } => {
            b.put_u8(OP_LOOKUP);
            put_str(&mut b, path);
        }
        FileOp::Create { path } => {
            b.put_u8(OP_CREATE);
            put_str(&mut b, path);
        }
        FileOp::Mkdir { path } => {
            b.put_u8(OP_MKDIR);
            put_str(&mut b, path);
        }
        FileOp::Read { ino, offset, len } => {
            b.put_u8(OP_READ);
            b.put_u64(*ino);
            b.put_u64(*offset);
            b.put_u64(*len);
        }
        FileOp::Write { ino, offset, len } => {
            b.put_u8(OP_WRITE);
            b.put_u64(*ino);
            b.put_u64(*offset);
            b.put_u64(*len);
        }
        FileOp::Remove { path } => {
            b.put_u8(OP_REMOVE);
            put_str(&mut b, path);
        }
        FileOp::Rename { from, to } => {
            b.put_u8(OP_RENAME);
            put_str(&mut b, from);
            put_str(&mut b, to);
        }
        FileOp::GetAttr { path } => {
            b.put_u8(OP_GETATTR);
            put_str(&mut b, path);
        }
        FileOp::SetPolicy { path, preset } => {
            b.put_u8(OP_SETPOLICY);
            put_str(&mut b, path);
            put_str(&mut b, preset);
        }
        FileOp::ReadDir { path } => {
            b.put_u8(OP_READDIR);
            put_str(&mut b, path);
        }
    }
    b.freeze()
}

/// Decode failure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecodeError {
    Empty,
    UnknownOpcode(u8),
    Truncated,
    BadString,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Empty => write!(f, "empty frame"),
            DecodeError::UnknownOpcode(op) => write!(f, "unknown opcode {op}"),
            DecodeError::Truncated => write!(f, "truncated frame"),
            DecodeError::BadString => write!(f, "invalid UTF-8 in string field"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Parse a frame.
pub fn decode(mut frame: Bytes) -> Result<FileOp, DecodeError> {
    if frame.is_empty() {
        return Err(DecodeError::Empty);
    }
    let op = frame.get_u8();
    let get_u64s = |frame: &mut Bytes| -> Result<(u64, u64, u64), DecodeError> {
        if frame.remaining() < 24 {
            return Err(DecodeError::Truncated);
        }
        Ok((frame.get_u64(), frame.get_u64(), frame.get_u64()))
    };
    match op {
        OP_LOOKUP => Ok(FileOp::Lookup { path: get_str(&mut frame)? }),
        OP_CREATE => Ok(FileOp::Create { path: get_str(&mut frame)? }),
        OP_MKDIR => Ok(FileOp::Mkdir { path: get_str(&mut frame)? }),
        OP_READ => {
            let (ino, offset, len) = get_u64s(&mut frame)?;
            Ok(FileOp::Read { ino, offset, len })
        }
        OP_WRITE => {
            let (ino, offset, len) = get_u64s(&mut frame)?;
            Ok(FileOp::Write { ino, offset, len })
        }
        OP_REMOVE => Ok(FileOp::Remove { path: get_str(&mut frame)? }),
        OP_RENAME => Ok(FileOp::Rename { from: get_str(&mut frame)?, to: get_str(&mut frame)? }),
        OP_GETATTR => Ok(FileOp::GetAttr { path: get_str(&mut frame)? }),
        OP_SETPOLICY => Ok(FileOp::SetPolicy { path: get_str(&mut frame)?, preset: get_str(&mut frame)? }),
        OP_READDIR => Ok(FileOp::ReadDir { path: get_str(&mut frame)? }),
        other => Err(DecodeError::UnknownOpcode(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_every_op() {
        let ops = [
            FileOp::Lookup { path: "/a/b".into() },
            FileOp::Create { path: "/data/run-42.h5".into() },
            FileOp::Mkdir { path: "/data".into() },
            FileOp::Read { ino: 17, offset: 1 << 30, len: 1 << 20 },
            FileOp::Write { ino: 17, offset: 0, len: 4096 },
            FileOp::Remove { path: "/tmp/x".into() },
            FileOp::Rename { from: "/a".into(), to: "/b".into() },
            FileOp::GetAttr { path: "/".into() },
            FileOp::SetPolicy { path: "/critical".into(), preset: "critical".into() },
            FileOp::ReadDir { path: "/data".into() },
        ];
        for op in ops {
            assert_eq!(decode(encode(&op)).unwrap(), op);
        }
    }

    #[test]
    fn unicode_paths_survive() {
        let op = FileOp::Create { path: "/données/α β γ.txt".into() };
        assert_eq!(decode(encode(&op)).unwrap(), op);
    }

    #[test]
    fn truncated_frames_rejected() {
        let full = encode(&FileOp::Rename { from: "/long/path/name".into(), to: "/other".into() });
        for cut in 1..full.len() {
            let partial = full.slice(..cut);
            assert!(decode(partial).is_err(), "cut at {cut} must not parse");
        }
    }

    #[test]
    fn empty_and_unknown_rejected() {
        assert_eq!(decode(Bytes::new()).unwrap_err(), DecodeError::Empty);
        assert_eq!(decode(Bytes::from_static(&[200])).unwrap_err(), DecodeError::UnknownOpcode(200));
    }
}

//! The block protocol: a SCSI-flavoured command set carried over FC, IP
//! (iSCSI-style), or Infiniband framing (§8 — "IP or Infiniband
//! encapsulated as SCSI").
//!
//! Commands serialize to real wire frames (via `bytes`) so protocol
//! round-trip correctness is tested, not assumed.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// 512-byte sectors, as the era's hosts expect.
pub const SECTOR: u64 = 512;

/// A block command descriptor.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BlockCmd {
    /// Read `sectors` sectors starting at `lba`.
    Read { lun: u32, lba: u64, sectors: u32 },
    /// Write `sectors` sectors starting at `lba`.
    Write { lun: u32, lba: u64, sectors: u32 },
    /// Release sectors (DMSD free-on-unuse, §3).
    Unmap { lun: u32, lba: u64, sectors: u32 },
    /// Enumerate LUNs visible to this initiator (LUN masking applies).
    ReportLuns,
    /// Identify the target.
    Inquiry,
}

/// Command completion status.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BlockStatus {
    Good,
    /// Initiator may not address this LUN (masked).
    AccessDenied,
    /// Address beyond the volume.
    LbaOutOfRange,
    /// Thin pool exhausted.
    SpaceExhausted,
    /// Target failed mid-command.
    TargetFailure,
}

const OP_READ: u8 = 0x28;
const OP_WRITE: u8 = 0x2A;
const OP_UNMAP: u8 = 0x42;
const OP_REPORT_LUNS: u8 = 0xA0;
const OP_INQUIRY: u8 = 0x12;

/// Frame a command for the wire.
pub fn encode(cmd: &BlockCmd) -> Bytes {
    let mut b = BytesMut::with_capacity(24);
    match cmd {
        BlockCmd::Read { lun, lba, sectors } => {
            b.put_u8(OP_READ);
            b.put_u32(*lun);
            b.put_u64(*lba);
            b.put_u32(*sectors);
        }
        BlockCmd::Write { lun, lba, sectors } => {
            b.put_u8(OP_WRITE);
            b.put_u32(*lun);
            b.put_u64(*lba);
            b.put_u32(*sectors);
        }
        BlockCmd::Unmap { lun, lba, sectors } => {
            b.put_u8(OP_UNMAP);
            b.put_u32(*lun);
            b.put_u64(*lba);
            b.put_u32(*sectors);
        }
        BlockCmd::ReportLuns => b.put_u8(OP_REPORT_LUNS),
        BlockCmd::Inquiry => b.put_u8(OP_INQUIRY),
    }
    b.freeze()
}

/// Decode failure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecodeError {
    Empty,
    UnknownOpcode(u8),
    Truncated,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Empty => write!(f, "empty frame"),
            DecodeError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#x}"),
            DecodeError::Truncated => write!(f, "truncated frame"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Parse a frame back into a command.
pub fn decode(mut frame: Bytes) -> Result<BlockCmd, DecodeError> {
    if frame.is_empty() {
        return Err(DecodeError::Empty);
    }
    let op = frame.get_u8();
    let need = |frame: &Bytes, n: usize| if frame.remaining() < n { Err(DecodeError::Truncated) } else { Ok(()) };
    match op {
        OP_READ | OP_WRITE | OP_UNMAP => {
            need(&frame, 16)?;
            let lun = frame.get_u32();
            let lba = frame.get_u64();
            let sectors = frame.get_u32();
            Ok(match op {
                OP_READ => BlockCmd::Read { lun, lba, sectors },
                OP_WRITE => BlockCmd::Write { lun, lba, sectors },
                _ => BlockCmd::Unmap { lun, lba, sectors },
            })
        }
        OP_REPORT_LUNS => Ok(BlockCmd::ReportLuns),
        OP_INQUIRY => Ok(BlockCmd::Inquiry),
        other => Err(DecodeError::UnknownOpcode(other)),
    }
}

impl BlockCmd {
    /// Payload bytes moved by this command (0 for control commands).
    pub fn payload_bytes(&self) -> u64 {
        match self {
            BlockCmd::Read { sectors, .. } | BlockCmd::Write { sectors, .. } => *sectors as u64 * SECTOR,
            _ => 0,
        }
    }

    pub fn byte_offset(&self) -> Option<u64> {
        match self {
            BlockCmd::Read { lba, .. } | BlockCmd::Write { lba, .. } | BlockCmd::Unmap { lba, .. } => {
                Some(lba * SECTOR)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_commands() {
        let cmds = [
            BlockCmd::Read { lun: 3, lba: 123456789, sectors: 128 },
            BlockCmd::Write { lun: 0, lba: 0, sectors: 1 },
            BlockCmd::Unmap { lun: 7, lba: u64::MAX / 2, sectors: u32::MAX },
            BlockCmd::ReportLuns,
            BlockCmd::Inquiry,
        ];
        for cmd in cmds {
            assert_eq!(decode(encode(&cmd)).unwrap(), cmd);
        }
    }

    #[test]
    fn payload_math() {
        let r = BlockCmd::Read { lun: 0, lba: 100, sectors: 8 };
        assert_eq!(r.payload_bytes(), 4096);
        assert_eq!(r.byte_offset(), Some(51200));
        assert_eq!(BlockCmd::Inquiry.payload_bytes(), 0);
        assert_eq!(BlockCmd::ReportLuns.byte_offset(), None);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(decode(Bytes::new()).unwrap_err(), DecodeError::Empty);
        assert_eq!(decode(Bytes::from_static(&[0xFF])).unwrap_err(), DecodeError::UnknownOpcode(0xFF));
        assert_eq!(decode(Bytes::from_static(&[0x28, 0, 0])).unwrap_err(), DecodeError::Truncated);
    }
}

//! Deterministic workload generators for the experiments: sequential
//! streams, uniform random I/O, Zipf "hot data" skew (§2's locality
//! problem), and read/write mixes, with Poisson or closed-loop arrivals.

use ys_simcore::rng::{Rng, Zipf};
use ys_simcore::time::SimDuration;

/// One generated I/O.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IoOp {
    /// Gap since the previous op (open-loop arrival spacing); ZERO for
    /// closed-loop workloads where the client waits for completions.
    pub think: SimDuration,
    pub write: bool,
    pub offset: u64,
    pub len: u64,
}

/// Address-pattern component of a workload.
#[derive(Clone, Debug)]
pub enum Pattern {
    /// Sequential from `start`, wrapping at `extent`.
    Sequential { start: u64 },
    /// Uniform over the extent.
    Random,
    /// Zipf over `working_set` block-sized items; rank 0 hottest.
    Zipf { sampler: Zipf },
}

/// A workload generator: pattern + size + mix + arrival process.
#[derive(Clone, Debug)]
pub struct Workload {
    pattern: Pattern,
    /// Addressable bytes.
    extent: u64,
    /// I/O size in bytes.
    io_bytes: u64,
    /// Fraction of writes in [0, 1].
    write_fraction: f64,
    /// Mean think time between ops (exponential); ZERO = closed loop.
    mean_think: SimDuration,
    rng: Rng,
    cursor: u64,
}

impl Workload {
    pub fn sequential(extent: u64, io_bytes: u64, seed: u64) -> Workload {
        Workload::new(Pattern::Sequential { start: 0 }, extent, io_bytes, 0.0, SimDuration::ZERO, seed)
    }

    pub fn random(extent: u64, io_bytes: u64, write_fraction: f64, seed: u64) -> Workload {
        Workload::new(Pattern::Random, extent, io_bytes, write_fraction, SimDuration::ZERO, seed)
    }

    /// Zipf hot-spot workload over `extent / io_bytes` items.
    pub fn zipf(extent: u64, io_bytes: u64, theta: f64, write_fraction: f64, seed: u64) -> Workload {
        let items = (extent / io_bytes).max(1) as usize;
        Workload::new(
            Pattern::Zipf { sampler: Zipf::new(items, theta) },
            extent,
            io_bytes,
            write_fraction,
            SimDuration::ZERO,
            seed,
        )
    }

    pub fn new(
        pattern: Pattern,
        extent: u64,
        io_bytes: u64,
        write_fraction: f64,
        mean_think: SimDuration,
        seed: u64,
    ) -> Workload {
        assert!(io_bytes > 0 && extent >= io_bytes, "extent must hold at least one I/O");
        assert!((0.0..=1.0).contains(&write_fraction));
        let cursor = match &pattern {
            Pattern::Sequential { start } => *start,
            _ => 0,
        };
        Workload { pattern, extent, io_bytes, write_fraction, mean_think, rng: Rng::new(seed), cursor }
    }

    /// Open-loop arrivals with exponential think time.
    pub fn with_think(mut self, mean: SimDuration) -> Workload {
        self.mean_think = mean;
        self
    }

    /// Generate the next op.
    pub fn next_op(&mut self) -> IoOp {
        let blocks = self.extent / self.io_bytes;
        let offset = match &self.pattern {
            Pattern::Sequential { .. } => {
                let o = self.cursor;
                self.cursor = (self.cursor + self.io_bytes) % (blocks * self.io_bytes);
                o
            }
            Pattern::Random => self.rng.next_below(blocks) * self.io_bytes,
            Pattern::Zipf { sampler } => sampler.sample(&mut self.rng) as u64 * self.io_bytes,
        };
        let write = self.rng.chance(self.write_fraction);
        let think = if self.mean_think.is_zero() {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs_f64(self.rng.exponential(self.mean_think.as_secs_f64()))
        };
        IoOp { think, write, offset, len: self.io_bytes }
    }

    /// Generate a batch.
    pub fn take(&mut self, n: usize) -> Vec<IoOp> {
        (0..n).map(|_| self.next_op()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_walks_contiguously_and_wraps() {
        let mut w = Workload::sequential(4 * 4096, 4096, 1);
        let ops = w.take(6);
        let offsets: Vec<u64> = ops.iter().map(|o| o.offset).collect();
        assert_eq!(offsets, vec![0, 4096, 8192, 12288, 0, 4096]);
        assert!(ops.iter().all(|o| !o.write));
    }

    #[test]
    fn random_stays_in_extent_and_aligned() {
        let mut w = Workload::random(1 << 30, 64 * 1024, 0.3, 7);
        for op in w.take(10_000) {
            assert!(op.offset + op.len <= 1 << 30);
            assert_eq!(op.offset % (64 * 1024), 0);
        }
    }

    #[test]
    fn write_fraction_is_respected() {
        let mut w = Workload::random(1 << 30, 4096, 0.25, 11);
        let writes = w.take(100_000).iter().filter(|o| o.write).count();
        let frac = writes as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "write fraction {frac}");
    }

    #[test]
    fn zipf_workload_is_skewed() {
        let mut w = Workload::zipf(1000 * 4096, 4096, 0.99, 0.0, 13);
        let mut counts = std::collections::HashMap::new();
        for op in w.take(50_000) {
            *counts.entry(op.offset).or_insert(0u32) += 1;
        }
        let top: u32 = counts.values().copied().max().unwrap();
        assert!(top > 1500, "hottest block should dominate, got {top}");
    }

    #[test]
    fn same_seed_reproduces_identical_traces() {
        let mut a = Workload::zipf(1 << 24, 4096, 0.9, 0.5, 42);
        let mut b = Workload::zipf(1 << 24, 4096, 0.9, 0.5, 42);
        assert_eq!(a.take(1000), b.take(1000));
    }

    #[test]
    fn think_time_has_requested_mean() {
        let mut w = Workload::random(1 << 20, 4096, 0.0, 17).with_think(SimDuration::from_millis(10));
        let ops = w.take(50_000);
        let mean_ns: f64 = ops.iter().map(|o| o.think.nanos() as f64).sum::<f64>() / ops.len() as f64;
        assert!((mean_ns / 1e7 - 1.0).abs() < 0.05, "mean think {mean_ns} ns");
    }
}

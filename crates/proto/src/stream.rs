//! Content-streaming exports (§8): HTTP, FTP, RTSP (and segment-specific
//! protocols like DICOM) served directly off the storage pool — "the
//! storage system would be capable of streaming data directly from the
//! storage devices to the network".

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Which layer-7 personality serves the stream.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StreamProtocol {
    Http,
    Ftp,
    Rtsp,
    Dicom,
}

/// A client's stream request: a path and an optional byte range.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StreamRequest {
    pub protocol: StreamProtocol,
    pub path: String,
    /// `None` = whole object.
    pub range: Option<(u64, u64)>,
}

/// The delivery schedule for one stream: fixed-size segments the blades
/// push in order, each taggable to a different blade for §2.3 striping.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamPlan {
    pub total_bytes: u64,
    pub segment_bytes: u64,
    pub segments: Vec<StreamSegment>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamSegment {
    pub index: u64,
    pub offset: u64,
    pub len: u64,
    /// Blade elected to push this segment (round-robin striping, Fig. 1).
    pub blade: usize,
}

/// Build the striped delivery plan: segments round-robin across `blades`.
pub fn plan_stream(object_len: u64, range: Option<(u64, u64)>, segment_bytes: u64, blades: usize) -> StreamPlan {
    assert!(segment_bytes > 0 && blades > 0);
    let (start, len) = match range {
        Some((s, l)) => (s.min(object_len), l.min(object_len.saturating_sub(s.min(object_len)))),
        None => (0, object_len),
    };
    let mut segments = Vec::new();
    let mut pos = start;
    let end = start + len;
    let mut idx = 0u64;
    while pos < end {
        let take = segment_bytes.min(end - pos);
        segments.push(StreamSegment {
            index: idx,
            offset: pos,
            len: take,
            blade: (idx % blades as u64) as usize,
        });
        pos += take;
        idx += 1;
    }
    StreamPlan { total_bytes: len, segment_bytes, segments }
}

const PROTO_HTTP: u8 = 1;
const PROTO_FTP: u8 = 2;
const PROTO_RTSP: u8 = 3;
const PROTO_DICOM: u8 = 4;

/// Frame a stream request.
pub fn encode(req: &StreamRequest) -> Bytes {
    let mut b = BytesMut::with_capacity(32);
    b.put_u8(match req.protocol {
        StreamProtocol::Http => PROTO_HTTP,
        StreamProtocol::Ftp => PROTO_FTP,
        StreamProtocol::Rtsp => PROTO_RTSP,
        StreamProtocol::Dicom => PROTO_DICOM,
    });
    match req.range {
        Some((s, l)) => {
            b.put_u8(1);
            b.put_u64(s);
            b.put_u64(l);
        }
        None => b.put_u8(0),
    }
    b.put_u16(req.path.len() as u16);
    b.put_slice(req.path.as_bytes());
    b.freeze()
}

/// Parse a stream request.
pub fn decode(mut frame: Bytes) -> Option<StreamRequest> {
    if frame.remaining() < 2 {
        return None;
    }
    let protocol = match frame.get_u8() {
        PROTO_HTTP => StreamProtocol::Http,
        PROTO_FTP => StreamProtocol::Ftp,
        PROTO_RTSP => StreamProtocol::Rtsp,
        PROTO_DICOM => StreamProtocol::Dicom,
        _ => return None,
    };
    let range = match frame.get_u8() {
        0 => None,
        1 => {
            if frame.remaining() < 16 {
                return None;
            }
            Some((frame.get_u64(), frame.get_u64()))
        }
        _ => return None,
    };
    if frame.remaining() < 2 {
        return None;
    }
    let n = frame.get_u16() as usize;
    if frame.remaining() < n {
        return None;
    }
    let path = String::from_utf8(frame.split_to(n).to_vec()).ok()?;
    Some(StreamRequest { protocol, path, range })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_covers_range_exactly_and_round_robins() {
        let plan = plan_stream(10_000_000, None, 1 << 20, 4);
        let total: u64 = plan.segments.iter().map(|s| s.len).sum();
        assert_eq!(total, 10_000_000);
        // Segments round-robin across the 4 blades.
        for (i, seg) in plan.segments.iter().enumerate() {
            assert_eq!(seg.blade, i % 4);
        }
        // Offsets are contiguous.
        let mut pos = 0;
        for seg in &plan.segments {
            assert_eq!(seg.offset, pos);
            pos += seg.len;
        }
    }

    #[test]
    fn range_request_clamps_to_object() {
        let plan = plan_stream(1000, Some((900, 500)), 256, 2);
        assert_eq!(plan.total_bytes, 100);
        assert_eq!(plan.segments.len(), 1);
        assert_eq!(plan.segments[0].offset, 900);
        // Range fully past the end → empty plan.
        let empty = plan_stream(1000, Some((2000, 10)), 256, 2);
        assert!(empty.segments.is_empty());
    }

    #[test]
    fn request_round_trip() {
        for req in [
            StreamRequest { protocol: StreamProtocol::Http, path: "/pub/genome.tar".into(), range: None },
            StreamRequest { protocol: StreamProtocol::Rtsp, path: "/video/launch.mov".into(), range: Some((1 << 20, 1 << 24)) },
            StreamRequest { protocol: StreamProtocol::Dicom, path: "/scan/patient-7".into(), range: Some((0, 1)) },
            StreamRequest { protocol: StreamProtocol::Ftp, path: "/".into(), range: None },
        ] {
            assert_eq!(decode(encode(&req)).unwrap(), req);
        }
    }

    #[test]
    fn garbage_requests_rejected() {
        assert!(decode(Bytes::new()).is_none());
        assert!(decode(Bytes::from_static(&[9, 0, 0, 1])).is_none());
        assert!(decode(Bytes::from_static(&[1, 1, 0])).is_none(), "truncated range");
    }
}

//! Shard definitions: one deterministic harness run per shard, fanned
//! across the [`crate::pool`] and merged back in input order.
//!
//! Every shard is a pure function of its input (a seed or a model name),
//! so the merged report is byte-identical whether shards ran on one worker
//! or sixteen. That identity is what `scripts/check.sh` compares and what
//! `tests/determinism.rs` pins.

use crate::pool::run_sweep;
use std::fmt::Write as _;
use ys_chaos::{run_rendered, RunOptions};
use ys_check::run_standard;

/// A merged sweep: the full rendered report plus the aggregate verdict.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// Per-shard sections concatenated in input (seed) order.
    pub report: String,
    /// True iff every shard met its promise.
    pub ok: bool,
}

/// Fan one fault campaign per seed across `jobs` workers.
///
/// Each shard regenerates its schedule from its seed and renders exactly
/// what a serial `ys-chaos --seed N` prints (transcript, verdict, and — on
/// failure — the shrunk reproducer).
pub fn chaos_sweep(seeds: &[u64], steps: u64, fatal: bool, jobs: usize) -> SweepOutcome {
    let runs = run_sweep(seeds.to_vec(), jobs, |&seed| {
        let opts = RunOptions { seed, steps, fatal, keep: None };
        run_rendered(&opts)
    });
    let mut report = String::new();
    let mut ok = true;
    for (seed, run) in seeds.iter().zip(&runs) {
        let _ = writeln!(report, "=== ys-chaos seed {seed} ===");
        report.push_str(&run.transcript);
        let _ = writeln!(report, "ys-chaos: seed {seed} {}", if run.ok { "PASS" } else { "FAIL" });
        ok &= run.ok;
    }
    let _ = writeln!(
        report,
        "ys-sweep: {} campaigns, {} failed",
        seeds.len(),
        runs.iter().filter(|r| !r.ok).count()
    );
    SweepOutcome { report, ok }
}

/// Fan one end-to-end integrity campaign per seed across `jobs` workers.
///
/// Each shard runs `ys_scrub::run_campaign` for its seed and renders
/// exactly what a serial `ys-scrub --seed N` prints (transcript and
/// verdict), so the merged report is byte-identical for every `--jobs`
/// value.
pub fn scrub_sweep(seeds: &[u64], errors: usize, jobs: usize) -> SweepOutcome {
    let runs = run_sweep(seeds.to_vec(), jobs, |&seed| {
        ys_scrub::run_campaign(&ys_scrub::CampaignConfig { seed, errors })
    });
    let mut report = String::new();
    let mut ok = true;
    for (seed, run) in seeds.iter().zip(&runs) {
        let _ = writeln!(report, "=== ys-scrub seed {seed} ===");
        let _ = write!(report, "{run}");
        let _ = writeln!(report, "ys-scrub: seed {seed} {}", if run.ok { "PASS" } else { "FAIL" });
        ok &= run.ok;
    }
    let _ = writeln!(
        report,
        "ys-sweep: {} campaigns, {} failed",
        seeds.len(),
        runs.iter().filter(|r| !r.ok).count()
    );
    SweepOutcome { report, ok }
}

/// Fan one blade-lifecycle campaign per seed across `jobs` workers.
///
/// Each shard runs `ys_heal::run_campaign` for its seed and renders
/// exactly what a serial `ys-heal --seed N` prints (transcript and
/// verdict), so the merged report is byte-identical for every `--jobs`
/// value.
pub fn heal_sweep(seeds: &[u64], writes: usize, jobs: usize) -> SweepOutcome {
    let runs = run_sweep(seeds.to_vec(), jobs, |&seed| {
        ys_heal::run_campaign(&ys_heal::CampaignConfig { seed, writes })
    });
    let mut report = String::new();
    let mut ok = true;
    for (seed, run) in seeds.iter().zip(&runs) {
        let _ = writeln!(report, "=== ys-heal seed {seed} ===");
        let _ = write!(report, "{run}");
        let _ = writeln!(report, "ys-heal: seed {seed} {}", if run.ok { "PASS" } else { "FAIL" });
        ok &= run.ok;
    }
    let _ = writeln!(
        report,
        "ys-sweep: {} campaigns, {} failed",
        seeds.len(),
        runs.iter().filter(|r| !r.ok).count()
    );
    SweepOutcome { report, ok }
}

/// Fan the named standard model checks across `jobs` workers.
///
/// Each shard runs one bounded exploration through
/// [`ys_check::run_standard`], so its section matches a serial `ys-check`
/// invocation byte for byte (library runs report `elapsed 0.00s`).
pub fn check_sweep(models: &[String], depth: usize, max_states: usize, jobs: usize) -> SweepOutcome {
    let runs = run_sweep(models.to_vec(), jobs, |model| run_standard(model, depth, max_states));
    let mut report = String::new();
    let mut ok = true;
    let mut violations = 0usize;
    for (model, run) in models.iter().zip(&runs) {
        let _ = writeln!(report, "=== ys-check {model} ===");
        match run {
            Ok(r) => {
                report.push_str(&r.rendered);
                if r.found_counterexample {
                    violations += 1;
                    ok = false;
                }
            }
            Err(e) => {
                let _ = writeln!(report, "error: {e}");
                ok = false;
            }
        }
    }
    let _ = writeln!(report, "ys-sweep: {} models, {violations} violations", models.len());
    SweepOutcome { report, ok }
}

/// Fan the benchmark confidence sweep (one Zipf workload per seed) across
/// `jobs` workers, then merge through the same aggregation code path the
/// serial `ys_bench::experiments::seed_sweep` uses.
pub fn bench_sweep(seeds: &[u64], jobs: usize) -> SweepOutcome {
    let results = run_sweep(seeds.to_vec(), jobs, |&seed| ys_bench::experiments::seed_run(seed));
    let series = ys_bench::experiments::summarize_seed_sweep(seeds, &results);
    let mut report = String::new();
    report.push_str(&series[0].render("seed", "MB/s"));
    report.push_str(&series[1].render("stat", "MB/s"));
    let ok = results.iter().all(|&mbps| mbps > 0.0);
    SweepOutcome { report, ok }
}

/// Headline numbers from the benchmark sweep, for the snapshot: mean, min,
/// and max MB/s over the seed set.
pub fn bench_sweep_stats(seeds: &[u64], jobs: usize) -> (f64, f64, f64) {
    let results = run_sweep(seeds.to_vec(), jobs, |&seed| ys_bench::experiments::seed_run(seed));
    let mean = results.iter().sum::<f64>() / results.len().max(1) as f64;
    let min = results.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = results.iter().cloned().fold(0.0, f64::max);
    (mean, min, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn models() -> Vec<String> {
        vec!["cache".into(), "qos".into()]
    }

    #[test]
    fn chaos_sweep_parallel_is_byte_identical_to_serial() {
        let seeds = [1u64, 2, 3, 4];
        let serial = chaos_sweep(&seeds, 16, false, 1);
        let parallel = chaos_sweep(&seeds, 16, false, 4);
        assert_eq!(serial.report, parallel.report, "jobs count changed the merged report");
        assert!(serial.ok);
    }

    #[test]
    fn scrub_sweep_parallel_is_byte_identical_to_serial() {
        let seeds = [1u64, 2, 3];
        let serial = scrub_sweep(&seeds, 56, 1);
        let parallel = scrub_sweep(&seeds, 56, 3);
        assert_eq!(serial.report, parallel.report, "jobs count changed the merged report");
        assert!(serial.ok, "{}", serial.report);
        assert!(serial.report.contains("=== ys-scrub seed 2 ==="));
    }

    #[test]
    fn heal_sweep_parallel_is_byte_identical_to_serial() {
        let seeds = [1u64, 2, 3];
        let serial = heal_sweep(&seeds, 32, 1);
        let parallel = heal_sweep(&seeds, 32, 3);
        assert_eq!(serial.report, parallel.report, "jobs count changed the merged report");
        assert!(serial.ok, "{}", serial.report);
        assert!(serial.report.contains("=== ys-heal seed 2 ==="));
    }

    #[test]
    fn check_sweep_parallel_is_byte_identical_to_serial() {
        let serial = check_sweep(&models(), 3, 200_000, 1);
        let parallel = check_sweep(&models(), 3, 200_000, 4);
        assert_eq!(serial.report, parallel.report);
        assert!(serial.ok, "{}", serial.report);
        assert!(serial.report.contains("=== ys-check cache ==="));
    }

    #[test]
    fn bench_sweep_parallel_is_byte_identical_to_serial() {
        let seeds = [1u64, 2, 3, 4, 5, 6];
        let serial = bench_sweep(&seeds, 1);
        let parallel = bench_sweep(&seeds, 8);
        assert_eq!(serial.report, parallel.report, "thread count changed results");
        assert!(serial.ok);
    }

    #[test]
    fn unknown_check_model_fails_the_sweep() {
        let out = check_sweep(&["nope".to_string()], 2, 1_000, 2);
        assert!(!out.ok);
        assert!(out.report.contains("error: unknown standard model"));
    }
}

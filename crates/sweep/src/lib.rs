//! # ys-sweep — parallel deterministic multi-seed runner
//!
//! Every simulation in this workspace is a pure function of
//! `(config, seed)` on a single thread. That makes multi-seed work —
//! `ys-check` explorations, `ys-chaos` fault campaigns, benchmark
//! confidence sweeps — embarrassingly parallel: `ys-sweep` fans one shard
//! per seed (or per model) across a worker pool, then merges results in
//! input order, so the aggregate report is **byte-identical** to a serial
//! run. Parallelism is a throughput knob that can never reach replay:
//! `ys-sweep --jobs 16` and `--jobs 1` print the same bytes, and
//! `scripts/check.sh` compares them on every run.
//!
//! Threads live only here (and the channel/mutex shims they use); the
//! simulation crates remain thread-free and clock-free, which keeps the
//! `ys-lint` ambient-entropy rule meaningful.
//!
//! The [`snapshot`] module emits `BENCH_baseline.json` — the
//! perf-trajectory baseline separating machine-independent simulation
//! metrics from host wall-clock stage costs.

#![warn(missing_docs)]

pub mod pool;
pub mod shard;
pub mod snapshot;

pub use pool::{default_threads, run_sweep};
pub use shard::{bench_sweep, chaos_sweep, check_sweep, heal_sweep, scrub_sweep, SweepOutcome};
pub use snapshot::{collect, diff, render, strip_host_lines, Scenario, SCHEMA};

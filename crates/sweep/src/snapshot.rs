//! The perf-trajectory baseline: `BENCH_baseline.json`.
//!
//! A snapshot records, per scenario, the *simulation* metrics (states
//! explored, campaigns run, simulated MB/s — identical on every machine
//! and every run) and the *host* wall-clock seconds the stage took (noisy,
//! machine-specific). The JSON is hand-rendered with sorted keys and fixed
//! four-decimal formatting so two snapshots of the same tree differ only
//! where the code's behaviour differs; every host number sits alone on a
//! line containing `"host_wall_s"`, so the drift gate can compare
//! snapshots line-filtered without a JSON parser.
//!
//! The wall clock itself is injected by the caller (`src/main.rs` is the
//! one place in this crate allowed to read real time); library callers
//! pass `|| 0.0` and get a fully deterministic snapshot.

use crate::shard::{bench_sweep_stats, chaos_sweep};
use std::fmt::Write as _;
use ys_check::{run_standard, STANDARD_MODELS};

/// Schema tag embedded in every snapshot; bump on layout changes.
pub const SCHEMA: &str = "ys-bench-snapshot/v1";

/// Exploration depth for the model-checker scenarios.
const CHECK_DEPTH: usize = 4;
/// State cap for the model-checker scenarios.
const CHECK_MAX_STATES: usize = 2_000_000;
/// Seeds for the chaos-campaign scenario.
const CHAOS_SEEDS: [u64; 6] = [1, 2, 3, 4, 5, 6];
/// Workload steps per chaos campaign.
const CHAOS_STEPS: u64 = 32;
/// Seeds for the benchmark confidence-sweep scenario.
const BENCH_SEEDS: [u64; 8] = [1, 2, 3, 4, 5, 6, 7, 8];

/// One named stage: its simulation metrics and its host wall-clock cost.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Stage name, e.g. `check_cache` or `bench_seed_sweep`.
    pub name: String,
    /// `(metric, value)` pairs; sorted by metric name at render time.
    pub sim: Vec<(String, f64)>,
    /// Host seconds the stage took (excluded from the drift gate).
    pub host_wall_s: f64,
}

/// Run every snapshot scenario with `jobs` workers. `clock` returns
/// absolute host seconds (monotonic); pass `|| 0.0` for a clock-free run.
pub fn collect(jobs: usize, clock: &dyn Fn() -> f64) -> Vec<Scenario> {
    let mut out = Vec::new();

    for model in STANDARD_MODELS {
        let t0 = clock();
        let run = run_standard(model, CHECK_DEPTH, CHECK_MAX_STATES)
            .expect("standard model list is self-consistent");
        out.push(Scenario {
            name: format!("check_{model}"),
            sim: vec![
                ("states_visited".into(), run.states_visited as f64),
                ("transitions".into(), run.transitions as f64),
                ("deduplicated".into(), run.deduplicated as f64),
                ("deepest".into(), run.deepest as f64),
                ("violations".into(), run.found_counterexample as u64 as f64),
            ],
            host_wall_s: clock() - t0,
        });
    }

    let t0 = clock();
    let chaos = chaos_sweep(&CHAOS_SEEDS, CHAOS_STEPS, false, jobs);
    out.push(Scenario {
        name: "chaos_sweep".into(),
        sim: vec![
            ("campaigns".into(), CHAOS_SEEDS.len() as f64),
            ("steps_per_campaign".into(), CHAOS_STEPS as f64),
            ("all_passed".into(), chaos.ok as u64 as f64),
            ("report_bytes".into(), chaos.report.len() as f64),
        ],
        host_wall_s: clock() - t0,
    });

    let t0 = clock();
    let (mean, min, max) = bench_sweep_stats(&BENCH_SEEDS, jobs);
    out.push(Scenario {
        name: "bench_seed_sweep".into(),
        sim: vec![
            ("seeds".into(), BENCH_SEEDS.len() as f64),
            ("mean_mb_s".into(), mean),
            ("min_mb_s".into(), min),
            ("max_mb_s".into(), max),
        ],
        host_wall_s: clock() - t0,
    });

    out
}

/// Render scenarios as the snapshot JSON document.
///
/// Deterministic by construction: scenario order is collection order,
/// metric keys are sorted, and all numbers print with four fixed decimals.
pub fn render(scenarios: &[Scenario]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    out.push_str("  \"scenarios\": {\n");
    for (i, sc) in scenarios.iter().enumerate() {
        let _ = writeln!(out, "    \"{}\": {{", sc.name);
        out.push_str("      \"sim\": {\n");
        let mut sim = sc.sim.clone();
        sim.sort_by(|a, b| a.0.cmp(&b.0));
        for (j, (k, v)) in sim.iter().enumerate() {
            let comma = if j + 1 < sim.len() { "," } else { "" };
            let _ = writeln!(out, "        \"{k}\": {v:.4}{comma}");
        }
        out.push_str("      },\n");
        // Keep the host number alone on its line (and last in the object)
        // so the drift gate can drop it with a line filter.
        let _ = writeln!(out, "      \"host_wall_s\": {:.4}", sc.host_wall_s);
        let comma = if i + 1 < scenarios.len() { "," } else { "" };
        let _ = writeln!(out, "    }}{comma}");
    }
    out.push_str("  }\n}\n");
    out
}

/// Drop every line carrying a host wall-clock number. The remainder is the
/// machine-independent portion two snapshots are compared on.
pub fn strip_host_lines(snapshot: &str) -> String {
    snapshot
        .lines()
        .filter(|l| !l.contains("\"host_wall_s\""))
        .map(|l| format!("{l}\n"))
        .collect()
}

/// Compare two snapshots ignoring host wall-clock lines. `None` means no
/// drift; `Some(report)` describes the first divergence.
pub fn diff(baseline: &str, current: &str) -> Option<String> {
    let a = strip_host_lines(baseline);
    let b = strip_host_lines(current);
    if a == b {
        return None;
    }
    let mut msg = String::from("benchmark snapshot drifted from BENCH_baseline.json:\n");
    for (n, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        if la != lb {
            let _ = writeln!(msg, "  first divergence (filtered line {}):", n + 1);
            let _ = writeln!(msg, "    baseline: {la}");
            let _ = writeln!(msg, "    current:  {lb}");
            return Some(msg);
        }
    }
    let _ = writeln!(
        msg,
        "  line counts differ: baseline {} vs current {}",
        a.lines().count(),
        b.lines().count()
    );
    Some(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Scenario> {
        vec![
            Scenario {
                name: "check_cache".into(),
                sim: vec![("transitions".into(), 10.0), ("states_visited".into(), 4.0)],
                host_wall_s: 1.25,
            },
            Scenario {
                name: "bench_seed_sweep".into(),
                sim: vec![("mean_mb_s".into(), 123.456789)],
                host_wall_s: 0.5,
            },
        ]
    }

    #[test]
    fn schema_layout_is_pinned() {
        // This is the committed BENCH_baseline.json layout; changing it
        // means bumping SCHEMA and regenerating the baseline.
        let got = render(&sample());
        let want = "{\n\
                    \x20 \"schema\": \"ys-bench-snapshot/v1\",\n\
                    \x20 \"scenarios\": {\n\
                    \x20   \"check_cache\": {\n\
                    \x20     \"sim\": {\n\
                    \x20       \"states_visited\": 4.0000,\n\
                    \x20       \"transitions\": 10.0000\n\
                    \x20     },\n\
                    \x20     \"host_wall_s\": 1.2500\n\
                    \x20   },\n\
                    \x20   \"bench_seed_sweep\": {\n\
                    \x20     \"sim\": {\n\
                    \x20       \"mean_mb_s\": 123.4568\n\
                    \x20     },\n\
                    \x20     \"host_wall_s\": 0.5000\n\
                    \x20   }\n\
                    \x20 }\n}\n";
        assert_eq!(got, want);
    }

    #[test]
    fn host_lines_are_excluded_from_drift() {
        let base = render(&sample());
        let mut hot = sample();
        hot[0].host_wall_s = 99.0; // a slower machine is not drift
        assert_eq!(diff(&base, &render(&hot)), None);

        hot[0].sim[0].1 = 11.0; // a changed sim metric is
        let d = diff(&base, &render(&hot)).expect("sim drift must be flagged");
        assert!(d.contains("transitions"), "{d}");
    }

    #[test]
    fn collected_snapshot_is_deterministic_across_jobs() {
        // The real collector with a null clock: all host numbers are 0 and
        // the sim portion must not depend on worker count.
        let a = render(&collect(1, &|| 0.0));
        let b = render(&collect(4, &|| 0.0));
        assert_eq!(a, b);
        assert!(a.contains("\"check_failover\""));
        assert!(a.contains("\"chaos_sweep\""));
        assert!(a.contains("\"all_passed\": 1.0000"));
    }
}

//! `ys-sweep` CLI — fan deterministic multi-seed harness runs across
//! worker threads.
//!
//! Exit codes: `0` every shard met its promise (or, for `snapshot
//! --check`, no drift), `1` a shard failed or the snapshot drifted, `2`
//! usage errors.
//!
//! This binary is the crate's one wall-clock reader: it injects elapsed
//! timers into the snapshot collector; the library stays clock-free.

use std::process::ExitCode;
use ys_sweep::{
    bench_sweep, chaos_sweep, check_sweep, default_threads, heal_sweep, scrub_sweep, snapshot,
    SweepOutcome,
};

const USAGE: &str = "\
ys-sweep: parallel deterministic multi-seed runner

USAGE:
    ys-sweep chaos [--seeds LIST] [--steps N] [--fatal] [--jobs N]
    ys-sweep scrub [--seeds LIST] [--errors N] [--jobs N]
    ys-sweep heal [--seeds LIST] [--writes N] [--jobs N]
    ys-sweep check [--models a,b] [--depth N] [--max-states N] [--jobs N]
    ys-sweep bench [--seeds LIST] [--jobs N]
    ys-sweep snapshot [--out PATH] [--check] [--jobs N]

OPTIONS:
    --seeds LIST    Comma list (1,2,7) or half-open range (1..9).
                    Defaults: chaos 1..5, scrub 1..5, heal 1..5, bench 1..9.
    --steps N       Chaos workload steps per campaign (default 32).
    --fatal         Chaos campaigns expect (and shrink) an acked-write loss.
    --errors N      Latent errors per scrub campaign (default 64).
    --writes N      Foreground writes per heal campaign (default 48).
    --models a,b    Standard models to check (default all five:
                    cache,virt,qos,failover,integrity).
    --depth N       Exploration depth for check shards (default 4).
    --max-states N  State cap for check shards (default 2000000).
    --out PATH      Snapshot path (default BENCH_baseline.json).
    --check         Compare a fresh snapshot against --out instead of
                    writing it; host wall-clock lines are ignored.
    --jobs N        Worker threads (default: available parallelism, max 16).

Shards are merged in input order, so output is byte-identical for every
--jobs value — parallelism is a throughput knob, not a behaviour knob.";

/// Wall-clock reader injected into the snapshot collector. The library
/// stays clock-free; this binary is the one place allowed to touch real
/// time.
fn wall_clock() -> impl Fn() -> f64 {
    let started = std::time::Instant::now();
    move || started.elapsed().as_secs_f64()
}

fn parse_seeds(spec: &str) -> Result<Vec<u64>, String> {
    if let Some((a, b)) = spec.split_once("..") {
        let a: u64 = a.trim().parse().map_err(|_| format!("bad seed range start {a}"))?;
        let b: u64 = b.trim().parse().map_err(|_| format!("bad seed range end {b}"))?;
        if b <= a {
            return Err(format!("empty seed range {spec}"));
        }
        return Ok((a..b).collect());
    }
    spec.split(',')
        .filter(|p| !p.is_empty())
        .map(|p| p.trim().parse().map_err(|_| format!("bad seed {p}")))
        .collect()
}

struct Args {
    mode: String,
    seeds: Option<Vec<u64>>,
    steps: u64,
    fatal: bool,
    errors: usize,
    writes: usize,
    models: Vec<String>,
    depth: usize,
    max_states: usize,
    out: String,
    check_drift: bool,
    jobs: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut it = std::env::args().skip(1);
    let mode = match it.next() {
        Some(m) if matches!(m.as_str(), "chaos" | "scrub" | "heal" | "check" | "bench" | "snapshot") => m,
        Some(m) if matches!(m.as_str(), "-h" | "--help") => return Err(String::new()),
        Some(m) => return Err(format!("unknown mode {m}")),
        None => return Err("missing mode".into()),
    };
    let mut args = Args {
        mode,
        seeds: None,
        steps: 32,
        fatal: false,
        errors: 64,
        writes: 48,
        models: ["cache", "virt", "qos", "failover", "integrity"].map(String::from).to_vec(),
        depth: 4,
        max_states: 2_000_000,
        out: "BENCH_baseline.json".into(),
        check_drift: false,
        jobs: default_threads(),
    };
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match a.as_str() {
            "--seeds" => args.seeds = Some(parse_seeds(&val("--seeds")?)?),
            "--steps" => {
                let v = val("--steps")?;
                args.steps = v.parse().map_err(|_| format!("bad --steps {v}"))?;
            }
            "--fatal" => args.fatal = true,
            "--errors" => {
                let v = val("--errors")?;
                args.errors = v.parse().map_err(|_| format!("bad --errors {v}"))?;
            }
            "--writes" => {
                let v = val("--writes")?;
                args.writes = v.parse().map_err(|_| format!("bad --writes {v}"))?;
            }
            "--models" => {
                args.models = val("--models")?.split(',').filter(|m| !m.is_empty()).map(String::from).collect();
            }
            "--depth" => {
                let v = val("--depth")?;
                args.depth = v.parse().map_err(|_| format!("bad --depth {v}"))?;
            }
            "--max-states" => {
                let v = val("--max-states")?;
                args.max_states = v.parse().map_err(|_| format!("bad --max-states {v}"))?;
            }
            "--out" => args.out = val("--out")?,
            "--check" => args.check_drift = true,
            "--jobs" => {
                let v = val("--jobs")?;
                args.jobs = v.parse().map_err(|_| format!("bad --jobs {v}"))?;
                if args.jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(args)
}

fn run_snapshot(args: &Args) -> Result<bool, String> {
    let snap = snapshot::render(&snapshot::collect(args.jobs, &wall_clock()));
    if args.check_drift {
        let baseline = std::fs::read_to_string(&args.out)
            .map_err(|e| format!("cannot read baseline {}: {e}", args.out))?;
        match snapshot::diff(&baseline, &snap) {
            None => {
                println!("ys-sweep: snapshot matches {} (host wall-clock ignored)", args.out);
                Ok(true)
            }
            Some(report) => {
                print!("{report}");
                println!("regenerate with: cargo xtask bench-snapshot");
                Ok(false)
            }
        }
    } else {
        std::fs::write(&args.out, &snap).map_err(|e| format!("cannot write {}: {e}", args.out))?;
        println!("ys-sweep: wrote {} ({} bytes)", args.out, snap.len());
        Ok(true)
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) if e.is_empty() => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("ys-sweep: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let ok = match args.mode.as_str() {
        "chaos" => {
            let seeds = args.seeds.clone().unwrap_or_else(|| (1..5).collect());
            let SweepOutcome { report, ok } = chaos_sweep(&seeds, args.steps, args.fatal, args.jobs);
            print!("{report}");
            ok
        }
        "scrub" => {
            let seeds = args.seeds.clone().unwrap_or_else(|| (1..5).collect());
            let SweepOutcome { report, ok } = scrub_sweep(&seeds, args.errors, args.jobs);
            print!("{report}");
            ok
        }
        "heal" => {
            let seeds = args.seeds.clone().unwrap_or_else(|| (1..5).collect());
            let SweepOutcome { report, ok } = heal_sweep(&seeds, args.writes, args.jobs);
            print!("{report}");
            ok
        }
        "check" => {
            let SweepOutcome { report, ok } =
                check_sweep(&args.models, args.depth, args.max_states, args.jobs);
            print!("{report}");
            ok
        }
        "bench" => {
            let seeds = args.seeds.clone().unwrap_or_else(|| (1..9).collect());
            let SweepOutcome { report, ok } = bench_sweep(&seeds, args.jobs);
            print!("{report}");
            ok
        }
        "snapshot" => match run_snapshot(&args) {
            Ok(ok) => ok,
            Err(e) => {
                eprintln!("ys-sweep: {e}");
                false
            }
        },
        _ => unreachable!("parse_args validated the mode"),
    };
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

//! The worker pool: fan deterministic jobs across threads, collect results
//! in input order.
//!
//! Each job is a single-threaded, deterministic simulation; only
//! *independent* runs parallelize. Inputs are fed through a crossbeam
//! channel to a scoped thread pool and outputs land in their input index,
//! so the result vector — and anything rendered from it — is byte-identical
//! to a serial loop over the same inputs. Threads live only in this harness
//! crate; the simulation crates stay thread-free and clock-free.

use crossbeam::channel;
use parking_lot::Mutex;

/// Run `f` over every item of `inputs`, in parallel across up to `threads`
/// workers, returning outputs in input order.
///
/// `f` must be deterministic per input for sweep results to be reproducible;
/// the parallelism here never reorders or perturbs individual runs.
pub fn run_sweep<I, O, F>(inputs: Vec<I>, threads: usize, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        return inputs.iter().map(&f).collect();
    }

    let (tx, rx) = channel::unbounded::<(usize, I)>();
    for pair in inputs.into_iter().enumerate() {
        // Infallible: `rx` is alive in this scope, so the channel cannot be
        // disconnected; a panic here would mean the invariant broke.
        tx.send(pair).expect("send to open channel");
    }
    drop(tx);

    let results: Mutex<Vec<Option<O>>> = Mutex::new((0..n).map(|_| None).collect());
    // Worker threads are a throughput detail: results land in index order
    // regardless of completion order, so parallelism never reaches replay.
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let rx = rx.clone();
            let results = &results;
            let f = &f;
            scope.spawn(move || {
                while let Ok((idx, input)) = rx.recv() {
                    let out = f(&input);
                    results.lock()[idx] = Some(out);
                }
            });
        }
    });
    results
        .into_inner()
        .into_iter()
        // Infallible: every index 0..n was queued exactly once and a worker
        // panic would already have propagated out of `thread::scope`.
        .map(|o| o.expect("worker produced every slot"))
        .collect()
}

/// Default worker count: the machine's parallelism, bounded to something
/// polite for shared boxes.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_are_in_input_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let out = run_sweep(inputs, 8, |&x| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<u64>>());
    }

    #[test]
    fn single_thread_path_matches_parallel() {
        let inputs: Vec<u64> = (0..50).collect();
        let seq = run_sweep(inputs.clone(), 1, |&x| x + 7);
        let par = run_sweep(inputs, 8, |&x| x + 7);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u64> = run_sweep(Vec::<u64>::new(), 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_inputs_is_fine() {
        let out = run_sweep(vec![1u64, 2], 64, |&x| x * 10);
        assert_eq!(out, vec![10, 20]);
    }

    #[test]
    fn work_is_actually_distributed() {
        // Record which thread handled each item; with 4 workers and 64
        // slow-ish items more than one thread should participate.
        use std::collections::HashSet;
        use std::sync::Mutex as StdMutex;
        let ids = StdMutex::new(HashSet::new());
        let inputs: Vec<u64> = (0..64).collect();
        run_sweep(inputs, 4, |_| {
            ids.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        assert!(ids.lock().unwrap().len() > 1);
    }
}

//! Cross-process determinism: the `ys-sweep` binary must print the same
//! bytes for every `--jobs` value. This drives the real CLI (argument
//! parsing, shard merge, report rendering) rather than the library, so it
//! also pins the exit codes and the seed-range syntax.

use std::process::{Command, Output};

fn sweep(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ys-sweep"))
        .args(args)
        .output()
        .expect("spawn ys-sweep")
}

#[test]
fn chaos_jobs4_is_byte_identical_to_jobs1() {
    let serial = sweep(&["chaos", "--seeds", "1..5", "--steps", "24", "--jobs", "1"]);
    let parallel = sweep(&["chaos", "--seeds", "1..5", "--steps", "24", "--jobs", "4"]);
    assert!(serial.status.success(), "{}", String::from_utf8_lossy(&serial.stderr));
    assert!(parallel.status.success());
    assert_eq!(serial.stdout, parallel.stdout, "--jobs changed the merged chaos report");
    let text = String::from_utf8(serial.stdout).unwrap();
    assert!(text.contains("=== ys-chaos seed 4 ==="));
    assert!(text.contains("ys-sweep: 4 campaigns, 0 failed"));
}

#[test]
fn bench_jobs4_is_byte_identical_to_jobs1() {
    let serial = sweep(&["bench", "--seeds", "1,2,3,4,5", "--jobs", "1"]);
    let parallel = sweep(&["bench", "--seeds", "1,2,3,4,5", "--jobs", "4"]);
    assert!(serial.status.success());
    assert!(parallel.status.success());
    assert_eq!(serial.stdout, parallel.stdout, "--jobs changed the bench sweep");
}

#[test]
fn usage_errors_exit_2() {
    let bad = sweep(&["chaos", "--seeds", "9..1"]);
    assert_eq!(bad.status.code(), Some(2));
    let unknown = sweep(&["frobnicate"]);
    assert_eq!(unknown.status.code(), Some(2));
}

#[test]
fn help_prints_usage_and_exits_0() {
    let help = sweep(&["--help"]);
    assert!(help.status.success());
    assert!(String::from_utf8_lossy(&help.stdout).contains("byte-identical"));
}

//! Property tests for geographic replication: journal ordering and
//! conservation under arbitrary enqueue/ship/cut interleavings, and
//! residency consistency under arbitrary access patterns.

use proptest::prelude::*;
use ys_geo::{DistributedAccess, ReplicationEngine, SiteId, SiteTopology};
use ys_simcore::time::SimTime;
use ys_simnet::catalog;

proptest! {
    /// For any interleaving of enqueues and budget-limited ships, shipped
    /// records per (src,dst) are strictly seq-ordered and
    /// shipped + pending == enqueued (until a cut).
    #[test]
    fn journal_conservation_and_order(
        ops in proptest::collection::vec((any::<bool>(), 0usize..3, 1u64..100_000), 1..120),
    ) {
        let mut e = ReplicationEngine::new();
        let src = SiteId(0);
        let mut enqueued = [0u64; 3];
        let mut shipped = [0u64; 3];
        let mut last_seq = [None::<u64>; 3];
        for (is_ship, dst, arg) in ops {
            let d = SiteId(dst + 1);
            if is_ship {
                for rec in e.ship(src, d, arg) {
                    if let Some(prev) = last_seq[dst] {
                        prop_assert!(rec.seq > prev, "order violated");
                    }
                    last_seq[dst] = Some(rec.seq);
                    shipped[dst] += 1;
                }
            } else {
                e.enqueue(src, d, 1, 0, arg, SimTime::ZERO);
                enqueued[dst] += 1;
            }
            for i in 0..3 {
                let (pend, _) = e.pending(src, SiteId(i + 1));
                prop_assert_eq!(pend + shipped[i], enqueued[i], "conservation for dst {}", i);
            }
        }
        // A source cut loses exactly the pending tail.
        let lost = e.source_cut(src).len() as u64;
        let total_pending: u64 = (0..3).map(|i| enqueued[i] - shipped[i]).sum();
        prop_assert_eq!(lost, total_pending);
    }

    /// Residency invariants under arbitrary read/write/fail sequences:
    /// a write leaves exactly one holder; reads only add holders; a failed
    /// site never appears in residency afterwards.
    #[test]
    fn residency_invariants(
        ops in proptest::collection::vec((0u8..4, 0usize..3, 0u64..6), 1..100),
    ) {
        let mut topo = SiteTopology::new(&["a", "b", "c"]);
        topo.connect(SiteId(0), SiteId(1), catalog::oc192(), 100.0);
        topo.connect(SiteId(0), SiteId(2), catalog::oc192(), 2000.0);
        topo.connect(SiteId(1), SiteId(2), catalog::oc192(), 2000.0);
        let mut acc = DistributedAccess::new(60.0, 2.0);
        let mut failed: Vec<SiteId> = vec![];
        let mut clock = 0u64;
        for (kind, site, file) in ops {
            clock += 1;
            let s = SiteId(site);
            let now = SimTime(clock);
            match kind {
                0 => {
                    if topo.site(s).up {
                        acc.set_home(file, s);
                    }
                }
                1 => {
                    if topo.site(s).up {
                        let before = acc.sites_of(file).len();
                        let _ = acc.read(&topo, file, s, now);
                        prop_assert!(acc.sites_of(file).len() >= before.min(1), "reads never shrink residency below 1 holder");
                    }
                }
                2 => {
                    if topo.site(s).up {
                        acc.write(file, s, now);
                        prop_assert_eq!(acc.sites_of(file), vec![s], "writer is sole holder");
                    }
                }
                _ => {
                    if topo.site(s).up && failed.len() < 2 {
                        topo.fail_site(s);
                        acc.fail_site(s);
                        failed.push(s);
                    }
                }
            }
            for f in 0..6u64 {
                for dead in &failed {
                    prop_assert!(!acc.sites_of(f).contains(dead), "failed site still resident");
                }
            }
        }
    }

    /// Placement never selects the home site, never exceeds reachable
    /// sites, and honours the copy count when it succeeds.
    #[test]
    fn placement_counts(copies in 1usize..6, home in 0usize..4, sync in any::<bool>()) {
        use ys_pfs::GeoPolicy;
        let mut topo = SiteTopology::new(&["a", "b", "c", "d"]);
        for i in 0..4usize {
            for j in (i + 1)..4 {
                topo.connect(SiteId(i), SiteId(j), catalog::oc192(), 100.0 * (i + j) as f64);
            }
        }
        let pol = if sync { GeoPolicy::sync(copies) } else { GeoPolicy::async_(copies) };
        match ys_geo::place(&topo, SiteId(home), &pol) {
            Ok(p) => {
                prop_assert_eq!(p.copies(), copies.max(1));
                prop_assert!(!p.sync_sites.contains(&SiteId(home)));
                prop_assert!(!p.async_sites.contains(&SiteId(home)));
                let mut all = p.all_sites();
                all.sort();
                all.dedup();
                prop_assert_eq!(all.len(), p.copies(), "no duplicate sites");
            }
            Err(_) => prop_assert!(copies > 4, "4 reachable sites satisfy ≤4 copies"),
        }
    }
}

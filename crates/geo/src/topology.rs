//! Multi-site topology (§7, Figure 3): sites joined by WAN links of
//! configurable distance and trunk rate.

use ys_simcore::time::SimDuration;
use ys_simnet::catalog;
use ys_simnet::LinkSpec;

/// Site index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SiteId(pub usize);

/// One data-center site.
#[derive(Clone, Debug)]
pub struct Site {
    pub id: SiteId,
    pub name: String,
    pub up: bool,
}

/// Inter-site connectivity.
#[derive(Clone, Debug)]
pub struct SiteTopology {
    sites: Vec<Site>,
    /// Symmetric matrices indexed `[a][b]`.
    distance_km: Vec<Vec<f64>>,
    trunk: Vec<Vec<Option<LinkSpec>>>,
    /// Symmetric partition mask: `true` means the trunk exists but is cut.
    link_down: Vec<Vec<bool>>,
}

impl SiteTopology {
    pub fn new(names: &[&str]) -> SiteTopology {
        let n = names.len();
        assert!(n > 0);
        SiteTopology {
            sites: names
                .iter()
                .enumerate()
                .map(|(i, &name)| Site { id: SiteId(i), name: name.into(), up: true })
                .collect(),
            distance_km: vec![vec![0.0; n]; n],
            trunk: vec![vec![None; n]; n],
            link_down: vec![vec![false; n]; n],
        }
    }

    pub fn len(&self) -> usize {
        self.sites.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    pub fn site(&self, id: SiteId) -> &Site {
        &self.sites[id.0]
    }

    pub fn sites(&self) -> impl Iterator<Item = &Site> {
        self.sites.iter()
    }

    /// Connect two sites with a trunk of the given spec over `km`.
    pub fn connect(&mut self, a: SiteId, b: SiteId, trunk: LinkSpec, km: f64) {
        assert_ne!(a, b, "no self links");
        let spec = catalog::wan(trunk, km);
        self.distance_km[a.0][b.0] = km;
        self.distance_km[b.0][a.0] = km;
        self.trunk[a.0][b.0] = Some(spec);
        self.trunk[b.0][a.0] = Some(spec);
    }

    pub fn distance_km(&self, a: SiteId, b: SiteId) -> f64 {
        self.distance_km[a.0][b.0]
    }

    pub fn link(&self, a: SiteId, b: SiteId) -> Option<LinkSpec> {
        if !self.sites[a.0].up || !self.sites[b.0].up || self.link_down[a.0][b.0] {
            return None;
        }
        self.trunk[a.0][b.0]
    }

    /// Cut the trunk between two sites (both directions) without taking
    /// either site down: a WAN partition, not a site failure.
    pub fn fail_link(&mut self, a: SiteId, b: SiteId) {
        self.link_down[a.0][b.0] = true;
        self.link_down[b.0][a.0] = true;
    }

    /// Restore a previously cut trunk.
    pub fn repair_link(&mut self, a: SiteId, b: SiteId) {
        self.link_down[a.0][b.0] = false;
        self.link_down[b.0][a.0] = false;
    }

    /// True when the trunk between two sites is administratively cut
    /// (independent of site up/down state).
    pub fn link_cut(&self, a: SiteId, b: SiteId) -> bool {
        self.link_down[a.0][b.0]
    }

    /// One-way latency for a message of `bytes` between connected sites
    /// (unloaded; queueing is charged by the orchestrator's Link objects).
    pub fn one_way(&self, a: SiteId, b: SiteId, bytes: u64) -> Option<SimDuration> {
        self.link(a, b).map(|l| l.unloaded_latency(bytes))
    }

    /// Round-trip time for a small control message.
    pub fn rtt(&self, a: SiteId, b: SiteId) -> Option<SimDuration> {
        self.one_way(a, b, 64).map(|d| d * 2)
    }

    pub fn fail_site(&mut self, s: SiteId) {
        self.sites[s.0].up = false;
    }

    pub fn repair_site(&mut self, s: SiteId) {
        self.sites[s.0].up = true;
    }

    /// Up sites sorted by distance from `from` (excluding `from` itself and
    /// unconnected sites).
    pub fn nearest_sites(&self, from: SiteId) -> Vec<SiteId> {
        let mut v: Vec<SiteId> = self
            .sites
            .iter()
            .filter(|s| s.up && s.id != from && self.trunk[from.0][s.id.0].is_some())
            .map(|s| s.id)
            .collect();
        v.sort_by(|&a, &b| {
            self.distance_km(from, a)
                .partial_cmp(&self.distance_km(from, b))
                .expect("finite distances")
                .then(a.0.cmp(&b.0))
        });
        v
    }

    /// Standard three-site lab deployment used across the experiments:
    /// metro dark fibre (25 km), regional OC-192 (1000 km),
    /// continental OC-48 (7000 km).
    pub fn national_lab() -> SiteTopology {
        let mut t = SiteTopology::new(&["metro", "regional", "continental"]);
        t.connect(SiteId(0), SiteId(1), catalog::oc768(), 25.0);
        t.connect(SiteId(0), SiteId(2), catalog::oc192(), 1000.0);
        t.connect(SiteId(1), SiteId(2), catalog::oc192(), 1000.0);
        // continental site reachable from both at long haul
        t.connect(SiteId(1), SiteId(0), catalog::oc768(), 25.0);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_is_symmetric() {
        let mut t = SiteTopology::new(&["a", "b"]);
        t.connect(SiteId(0), SiteId(1), catalog::oc192(), 500.0);
        assert_eq!(t.distance_km(SiteId(0), SiteId(1)), 500.0);
        assert_eq!(t.distance_km(SiteId(1), SiteId(0)), 500.0);
        assert!(t.link(SiteId(0), SiteId(1)).is_some());
    }

    #[test]
    fn latency_grows_with_distance() {
        let mut t = SiteTopology::new(&["a", "b", "c"]);
        t.connect(SiteId(0), SiteId(1), catalog::oc192(), 10.0);
        t.connect(SiteId(0), SiteId(2), catalog::oc192(), 5000.0);
        let near = t.rtt(SiteId(0), SiteId(1)).unwrap();
        let far = t.rtt(SiteId(0), SiteId(2)).unwrap();
        assert!(far > near * 10);
        // 5000 km ≈ 25 ms one-way → RTT ≥ 50 ms.
        assert!(far.as_millis_f64() >= 50.0);
    }

    #[test]
    fn failed_site_has_no_links() {
        let mut t = SiteTopology::new(&["a", "b"]);
        t.connect(SiteId(0), SiteId(1), catalog::oc48(), 100.0);
        t.fail_site(SiteId(1));
        assert!(t.link(SiteId(0), SiteId(1)).is_none());
        t.repair_site(SiteId(1));
        assert!(t.link(SiteId(0), SiteId(1)).is_some());
    }

    #[test]
    fn cut_link_blocks_traffic_without_failing_sites() {
        let mut t = SiteTopology::new(&["a", "b", "c"]);
        t.connect(SiteId(0), SiteId(1), catalog::oc192(), 100.0);
        t.connect(SiteId(0), SiteId(2), catalog::oc192(), 100.0);
        t.fail_link(SiteId(1), SiteId(0));
        assert!(t.link_cut(SiteId(0), SiteId(1)));
        assert!(t.link(SiteId(0), SiteId(1)).is_none());
        assert!(t.link(SiteId(1), SiteId(0)).is_none());
        // Other trunks and the sites themselves stay up.
        assert!(t.link(SiteId(0), SiteId(2)).is_some());
        assert!(t.site(SiteId(1)).up);
        t.repair_link(SiteId(0), SiteId(1));
        assert!(t.link(SiteId(0), SiteId(1)).is_some());
    }

    #[test]
    fn nearest_sites_ordered_by_distance() {
        let mut t = SiteTopology::new(&["home", "near", "far", "island"]);
        t.connect(SiteId(0), SiteId(2), catalog::oc192(), 3000.0);
        t.connect(SiteId(0), SiteId(1), catalog::oc768(), 30.0);
        // island (3) never connected
        assert_eq!(t.nearest_sites(SiteId(0)), vec![SiteId(1), SiteId(2)]);
        t.fail_site(SiteId(1));
        assert_eq!(t.nearest_sites(SiteId(0)), vec![SiteId(2)]);
    }

    #[test]
    fn national_lab_shape() {
        let t = SiteTopology::national_lab();
        assert_eq!(t.len(), 3);
        let metro_rtt = t.rtt(SiteId(0), SiteId(1)).unwrap();
        let long_rtt = t.rtt(SiteId(0), SiteId(2)).unwrap();
        assert!(metro_rtt.as_millis_f64() < 1.0, "metro {metro_rtt}");
        assert!(long_rtt.as_millis_f64() > 9.0, "continental {long_rtt}");
    }
}

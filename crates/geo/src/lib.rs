//! `ys-geo` — geographically distributed storage (§6.2, §7): the
//! "metadata center" that manages multiple sites as a single data image.
//!
//! * [`topology`] — [`SiteTopology`]: sites, WAN trunks, distances,
//!   failures, and the standard three-tier national-lab deployment;
//! * [`placement`] — policy-driven replica-site selection (pinned sites,
//!   nearest-first, minimum-distance, sync-near/async-far tiering);
//! * [`replication`] — [`ReplicationEngine`]: synchronous mirrors and
//!   write-ordered asynchronous journals with measurable loss windows and
//!   RPO;
//! * [`access`] — [`DistributedAccess`]: residency, first-reference
//!   migration, write invalidation, heat-driven automatic replication, and
//!   site-failure accounting.

pub mod access;
pub mod placement;
pub mod replication;
pub mod topology;

pub use access::{AccessKind, DistributedAccess};
pub use placement::{place, Placement, PlacementError};
pub use replication::{ReplicationEngine, WriteRecord};
pub use topology::{Site, SiteId, SiteTopology};

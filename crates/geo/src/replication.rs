//! Remote replication engine (§6.2, §7.2): synchronous mirrors and
//! write-ordered asynchronous journals, with measurable loss windows.
//!
//! "An asynchronous replication approach has been available where every
//! write is written, in the order of the writes, to a remote volume. This
//! solution still leaves a significant window for data loss." The journal
//! here preserves exactly that semantics so E9 can measure the window.

use crate::topology::SiteId;
use std::collections::{BTreeMap, VecDeque};
use ys_simcore::time::SimTime;
use ys_simcore::SpanRecorder;

/// One replicated write.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WriteRecord {
    /// Global order stamp (per source site).
    pub seq: u64,
    /// File identity (inode number).
    pub file: u64,
    pub offset: u64,
    pub len: u64,
    /// When the host write happened.
    pub created: SimTime,
}

/// Per-destination journal: FIFO, shipped strictly in order.
///
/// Shipping is two-phase. [`ReplicationEngine::ship_begin`] moves records
/// from `queue` to `inflight`; once the orchestrator has confirmed delivery
/// it calls [`ReplicationEngine::ship_confirm`], which is the only place the
/// shipped counters and `last_shipped_seq` advance. A transfer that dies
/// mid-batch calls [`ReplicationEngine::ship_abort`], which requeues the
/// inflight records at the *front* of the queue so the acknowledged prefix
/// stays gapless: nothing is counted shipped that was not applied, and
/// nothing applied is ever re-sent (no double-apply, no skip).
#[derive(Clone, Debug, Default)]
struct Journal {
    queue: VecDeque<WriteRecord>,
    /// Popped by `ship_begin`, not yet confirmed or aborted.
    inflight: VecDeque<WriteRecord>,
    pending_bytes: u64,
    last_shipped_seq: Option<u64>,
    shipped_writes: u64,
    shipped_bytes: u64,
}

/// The engine: one journal per (source, destination) site pair.
#[derive(Clone, Debug)]
pub struct ReplicationEngine {
    /// Ordered: `advance` walks every journal per step, and WAN-loss
    /// accounting must visit site pairs in the same order on every replay.
    journals: BTreeMap<(SiteId, SiteId), Journal>,
    next_seq: u64,
    /// Sync replication counters (latency is charged by the orchestrator).
    sync_writes: u64,
    sync_bytes: u64,
    trace: SpanRecorder,
}

impl Default for ReplicationEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl ReplicationEngine {
    pub fn new() -> ReplicationEngine {
        ReplicationEngine {
            journals: BTreeMap::new(),
            next_seq: 0,
            sync_writes: 0,
            sync_bytes: 0,
            trace: SpanRecorder::disabled(),
        }
    }

    /// Structured trace of replication batches (disabled by default). `ship`
    /// and `source_cut` are untimed; the orchestrator calls
    /// `trace_mut().set_now(..)` before them.
    pub fn trace(&self) -> &SpanRecorder {
        &self.trace
    }

    pub fn trace_mut(&mut self) -> &mut SpanRecorder {
        &mut self.trace
    }

    fn stamp(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// Record a synchronous replica write (already persisted remotely by
    /// the time the host is acked; the orchestrator charged the RTT).
    pub fn record_sync(&mut self, bytes: u64) {
        self.sync_writes += 1;
        self.sync_bytes += bytes;
    }

    pub fn sync_totals(&self) -> (u64, u64) {
        (self.sync_writes, self.sync_bytes)
    }

    /// Enqueue an asynchronous replica write from `src` toward `dst`.
    pub fn enqueue(&mut self, src: SiteId, dst: SiteId, file: u64, offset: u64, len: u64, now: SimTime) -> u64 {
        let seq = self.stamp();
        let j = self.journals.entry((src, dst)).or_default();
        j.queue.push_back(WriteRecord { seq, file, offset, len, created: now });
        j.pending_bytes += len;
        self.trace.instant_at(now, "geo", "enqueue", dst.0 as u32, seq, len);
        seq
    }

    /// Ship up to `max_bytes` from the (src, dst) journal, strictly in
    /// write order, assuming delivery cannot fail. Equivalent to
    /// [`ship_begin`] + [`ship_confirm`] of the whole batch — orchestrators
    /// that can lose a transfer mid-batch (WAN partition, site crash) must
    /// use the two-phase calls instead.
    ///
    /// [`ship_begin`]: ReplicationEngine::ship_begin
    /// [`ship_confirm`]: ReplicationEngine::ship_confirm
    pub fn ship(&mut self, src: SiteId, dst: SiteId, max_bytes: u64) -> Vec<WriteRecord> {
        let out = self.ship_begin(src, dst, max_bytes);
        if let Some(last) = out.last() {
            self.ship_confirm(src, dst, last.seq);
        }
        out
    }

    /// Phase one: pop up to `max_bytes` of records into the inflight set
    /// and return copies for the orchestrator to deliver. Shipped counters
    /// do not move yet. A `ship_begin` while records are already inflight
    /// returns an empty batch — the previous batch must be confirmed or
    /// aborted first (one outstanding batch per journal keeps write order).
    pub fn ship_begin(&mut self, src: SiteId, dst: SiteId, max_bytes: u64) -> Vec<WriteRecord> {
        let Some(j) = self.journals.get_mut(&(src, dst)) else {
            return vec![];
        };
        if !j.inflight.is_empty() {
            return vec![];
        }
        let mut out = Vec::new();
        let mut budget = max_bytes;
        while let Some(front) = j.queue.front() {
            if front.len > budget && !out.is_empty() {
                break;
            }
            // Always ship at least one record even if it exceeds the budget,
            // so giant writes cannot wedge the journal.
            let rec = j.queue.pop_front().expect("non-empty");
            budget = budget.saturating_sub(rec.len);
            j.pending_bytes -= rec.len;
            j.inflight.push_back(rec);
            out.push(rec);
            if budget == 0 {
                break;
            }
        }
        if !out.is_empty() {
            let bytes: u64 = out.iter().map(|r| r.len).sum();
            self.trace.instant("geo", "ship", dst.0 as u32, out.len() as u64, bytes);
        }
        out
    }

    /// Phase two (success): the destination has durably applied every
    /// inflight record with `seq <= through_seq`. Advances the shipped
    /// counters and the acknowledged prefix. Records beyond `through_seq`
    /// stay inflight for a later confirm or abort.
    pub fn ship_confirm(&mut self, src: SiteId, dst: SiteId, through_seq: u64) {
        let Some(j) = self.journals.get_mut(&(src, dst)) else {
            return;
        };
        while let Some(front) = j.inflight.front() {
            if front.seq > through_seq {
                break;
            }
            let rec = j.inflight.pop_front().expect("non-empty");
            if let Some(last) = j.last_shipped_seq {
                debug_assert!(rec.seq > last, "journal order violated");
            }
            j.last_shipped_seq = Some(rec.seq);
            j.shipped_writes += 1;
            j.shipped_bytes += rec.len;
        }
    }

    /// Phase two (failure): the transfer died before the remaining inflight
    /// records were applied. They return to the *front* of the queue in
    /// order, so the next `ship_begin` re-sends exactly the unacknowledged
    /// suffix — no record is skipped and none is counted twice. Returns the
    /// number of records requeued.
    pub fn ship_abort(&mut self, src: SiteId, dst: SiteId) -> usize {
        let Some(j) = self.journals.get_mut(&(src, dst)) else {
            return 0;
        };
        let n = j.inflight.len();
        while let Some(rec) = j.inflight.pop_back() {
            j.pending_bytes += rec.len;
            j.queue.push_front(rec);
        }
        if n > 0 {
            self.trace.instant("geo", "ship_abort", dst.0 as u32, n as u64, 0);
        }
        n
    }

    /// Highest sequence confirmed applied at `dst` (the acknowledged
    /// prefix boundary), if anything has been confirmed.
    pub fn acked_through(&self, src: SiteId, dst: SiteId) -> Option<u64> {
        self.journals.get(&(src, dst)).and_then(|j| j.last_shipped_seq)
    }

    /// Records currently inflight (begun, neither confirmed nor aborted).
    pub fn inflight(&self, src: SiteId, dst: SiteId) -> u64 {
        match self.journals.get(&(src, dst)) {
            Some(j) => j.inflight.len() as u64,
            None => 0,
        }
    }

    /// Writes and bytes not yet shipped from `src` to `dst`.
    pub fn pending(&self, src: SiteId, dst: SiteId) -> (u64, u64) {
        match self.journals.get(&(src, dst)) {
            Some(j) => (j.queue.len() as u64, j.pending_bytes),
            None => (0, 0),
        }
    }

    pub fn shipped(&self, src: SiteId, dst: SiteId) -> (u64, u64) {
        match self.journals.get(&(src, dst)) {
            Some(j) => (j.shipped_writes, j.shipped_bytes),
            None => (0, 0),
        }
    }

    /// The source site is destroyed: every pending (unshipped) async write
    /// toward every destination is lost, and so is anything inflight —
    /// begun but never confirmed applied. Returns them — this IS the data
    /// loss window the paper contrasts sync against.
    pub fn source_cut(&mut self, src: SiteId) -> Vec<WriteRecord> {
        let mut lost = Vec::new();
        for ((s, _), j) in self.journals.iter_mut() {
            if *s == src {
                lost.extend(j.inflight.drain(..));
                lost.extend(j.queue.drain(..));
                j.pending_bytes = 0;
            }
        }
        lost.sort_by_key(|r| r.seq);
        if !lost.is_empty() {
            let bytes: u64 = lost.iter().map(|r| r.len).sum();
            self.trace.instant("geo", "source_cut", src.0 as u32, lost.len() as u64, bytes);
        }
        lost
    }

    /// Oldest unshipped write age (the recovery-point objective actually
    /// achieved) at `now`.
    pub fn rpo(&self, src: SiteId, dst: SiteId, now: SimTime) -> Option<ys_simcore::time::SimDuration> {
        self.journals
            .get(&(src, dst))
            .and_then(|j| j.queue.front())
            .map(|r| now.since(r.created))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: SiteId = SiteId(0);
    const B: SiteId = SiteId(1);
    const C: SiteId = SiteId(2);

    #[test]
    fn ships_in_write_order() {
        let mut e = ReplicationEngine::new();
        for i in 0..10u64 {
            e.enqueue(A, B, 1, i * 100, 100, SimTime(i));
        }
        let shipped = e.ship(A, B, u64::MAX);
        let seqs: Vec<u64> = shipped.iter().map(|r| r.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted);
        assert_eq!(shipped.len(), 10);
        assert_eq!(e.pending(A, B), (0, 0));
    }

    #[test]
    fn ship_respects_byte_budget() {
        let mut e = ReplicationEngine::new();
        for i in 0..5u64 {
            e.enqueue(A, B, 1, i * 100, 100, SimTime::ZERO);
        }
        let first = e.ship(A, B, 250);
        assert_eq!(first.len(), 2, "two 100-byte writes fit the 250-byte budget");
        let rest = e.ship(A, B, u64::MAX);
        assert_eq!(rest.len(), 3);
    }

    #[test]
    fn oversized_write_still_ships_alone() {
        let mut e = ReplicationEngine::new();
        e.enqueue(A, B, 1, 0, 1_000_000, SimTime::ZERO);
        let shipped = e.ship(A, B, 10);
        assert_eq!(shipped.len(), 1, "giant write cannot wedge the journal");
    }

    #[test]
    fn journals_are_per_destination() {
        let mut e = ReplicationEngine::new();
        e.enqueue(A, B, 1, 0, 10, SimTime::ZERO);
        e.enqueue(A, C, 1, 0, 20, SimTime::ZERO);
        assert_eq!(e.pending(A, B), (1, 10));
        assert_eq!(e.pending(A, C), (1, 20));
        e.ship(A, B, u64::MAX);
        assert_eq!(e.pending(A, B), (0, 0));
        assert_eq!(e.pending(A, C), (1, 20), "C's journal untouched");
    }

    #[test]
    fn source_cut_loses_exactly_the_pending_writes() {
        let mut e = ReplicationEngine::new();
        for i in 0..6u64 {
            e.enqueue(A, B, 1, i, 1, SimTime(i));
        }
        e.ship(A, B, 3); // 3 made it out
        let lost = e.source_cut(A);
        assert_eq!(lost.len(), 3, "unshipped tail is the loss window");
        assert!(lost.windows(2).all(|w| w[0].seq < w[1].seq));
        // Sync writes have no window by construction.
        e.record_sync(100);
        assert_eq!(e.sync_totals(), (1, 100));
    }

    #[test]
    fn aborted_batch_is_resent_without_gap_or_double_count() {
        let mut e = ReplicationEngine::new();
        for i in 0..6u64 {
            e.enqueue(A, B, 1, i * 100, 100, SimTime(i));
        }
        // Begin a 3-record batch, then the link dies before delivery.
        let batch = e.ship_begin(A, B, 300);
        assert_eq!(batch.len(), 3);
        assert_eq!(e.inflight(A, B), 3);
        assert_eq!(e.shipped(A, B), (0, 0), "nothing confirmed yet");
        assert_eq!(e.ship_abort(A, B), 3);
        assert_eq!(e.inflight(A, B), 0);
        assert_eq!(e.pending(A, B), (6, 600), "aborted records are pending again");
        // After heal the full sequence ships exactly once, in order.
        let resent = e.ship(A, B, u64::MAX);
        let seqs: Vec<u64> = resent.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (0..6).collect::<Vec<u64>>());
        assert_eq!(e.shipped(A, B), (6, 600));
        assert_eq!(e.acked_through(A, B), Some(5));
    }

    #[test]
    fn partial_confirm_keeps_the_unacked_suffix_inflight() {
        let mut e = ReplicationEngine::new();
        for i in 0..4u64 {
            e.enqueue(A, B, 1, i, 50, SimTime(i));
        }
        let batch = e.ship_begin(A, B, u64::MAX);
        assert_eq!(batch.len(), 4);
        // Only the first two landed before the partition.
        e.ship_confirm(A, B, batch[1].seq);
        assert_eq!(e.shipped(A, B), (2, 100));
        assert_eq!(e.acked_through(A, B), Some(batch[1].seq));
        assert_eq!(e.inflight(A, B), 2);
        // Second begin while a batch is outstanding returns nothing.
        assert!(e.ship_begin(A, B, u64::MAX).is_empty());
        e.ship_abort(A, B);
        let resent = e.ship(A, B, u64::MAX);
        let seqs: Vec<u64> = resent.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![batch[2].seq, batch[3].seq], "exactly the unacked suffix");
        assert_eq!(e.shipped(A, B), (4, 200), "no double count");
    }

    #[test]
    fn source_cut_counts_inflight_as_lost() {
        let mut e = ReplicationEngine::new();
        for i in 0..5u64 {
            e.enqueue(A, B, 1, i, 1, SimTime(i));
        }
        let batch = e.ship_begin(A, B, 2);
        assert_eq!(batch.len(), 2);
        let lost = e.source_cut(A);
        assert_eq!(lost.len(), 5, "inflight-but-unconfirmed writes are lost too");
        assert!(lost.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn rpo_reports_oldest_unshipped_age() {
        let mut e = ReplicationEngine::new();
        assert!(e.rpo(A, B, SimTime(100)).is_none());
        e.enqueue(A, B, 1, 0, 1, SimTime(100));
        e.enqueue(A, B, 1, 1, 1, SimTime(200));
        let rpo = e.rpo(A, B, SimTime(500)).unwrap();
        assert_eq!(rpo.nanos(), 400, "oldest entry dominates");
        e.ship(A, B, 1);
        let rpo = e.rpo(A, B, SimTime(500)).unwrap();
        assert_eq!(rpo.nanos(), 300);
    }
}

//! Distributed data access (§7.1): residency tracking, first-reference
//! migration, prefetch accounting, and automatic replication of files hot
//! at multiple sites.
//!
//! "If a file were commonly used in a single location, the system would
//! locate the physical data at that location. ... The first time the data
//! was referenced, a copy of the data would be moved to the referencing
//! site. ... The system would recognize files that are commonly accessed at
//! multiple locations and automatically replicate copies."

use crate::topology::{SiteId, SiteTopology};
use std::collections::{BTreeMap, BTreeSet};
use ys_cache::HeatTracker;
use ys_simcore::time::SimTime;

/// How a read was served.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessKind {
    /// Data already resident at the reading site.
    Local,
    /// First reference: data migrates from the nearest holder; the caller
    /// charges one WAN round trip for the first block and pipelines the
    /// prefetch of the rest.
    RemoteMigration { from: SiteId },
    /// No site holds the file (lost or never written).
    Unavailable,
}

/// Residency + heat state for the distributed namespace.
#[derive(Clone, Debug)]
pub struct DistributedAccess {
    /// Ordered: site-destruction sweeps iterate residency, and the
    /// surviving-copy audit must be replay-deterministic.
    residency: BTreeMap<u64, BTreeSet<SiteId>>,
    heat: HeatTracker<u64>,
    hot_threshold: f64,
}

impl DistributedAccess {
    pub fn new(heat_half_life_secs: f64, hot_threshold: f64) -> DistributedAccess {
        DistributedAccess {
            residency: BTreeMap::new(),
            heat: HeatTracker::new(heat_half_life_secs),
            hot_threshold,
        }
    }

    /// Declare where a file's data lives (creation or placement decision).
    pub fn set_home(&mut self, file: u64, site: SiteId) {
        self.residency.entry(file).or_default().insert(site);
    }

    pub fn sites_of(&self, file: u64) -> Vec<SiteId> {
        self.residency.get(&file).map(|s| s.iter().copied().collect()).unwrap_or_default()
    }

    pub fn is_resident(&self, file: u64, site: SiteId) -> bool {
        self.residency.get(&file).map(|s| s.contains(&site)).unwrap_or(false)
    }

    /// Serve a read at `site`, migrating on first reference.
    pub fn read(&mut self, topology: &SiteTopology, file: u64, site: SiteId, now: SimTime) -> AccessKind {
        self.heat.record(file, site.0, now);
        let holders = match self.residency.get(&file) {
            Some(h) if !h.is_empty() => h,
            _ => return AccessKind::Unavailable,
        };
        if holders.contains(&site) {
            return AccessKind::Local;
        }
        // Nearest up holder supplies the copy.
        let mut best: Option<(f64, SiteId)> = None;
        for &h in holders {
            if topology.site(h).up && topology.link(site, h).is_some() {
                let d = topology.distance_km(site, h);
                if best.map(|(bd, _)| d < bd).unwrap_or(true) {
                    best = Some((d, h));
                }
            }
        }
        match best {
            Some((_, from)) => {
                // Migration: the referencing site now holds a copy.
                self.residency.get_mut(&file).expect("checked").insert(site);
                AccessKind::RemoteMigration { from }
            }
            None => AccessKind::Unavailable,
        }
    }

    /// A write at `site` invalidates every other site's copy (they must
    /// re-fetch or be re-pushed); `site` becomes the sole holder.
    pub fn write(&mut self, file: u64, site: SiteId, now: SimTime) {
        self.heat.record(file, site.0, now);
        let set = self.residency.entry(file).or_default();
        set.clear();
        set.insert(site);
    }

    /// Sites where `file` is hot but not resident — the system pushes
    /// copies there proactively. Returns the push targets.
    pub fn auto_replicate(&mut self, file: u64, now: SimTime) -> Vec<SiteId> {
        let hot = self.heat.hot_accessors(&file, self.hot_threshold, now);
        let mut pushed = Vec::new();
        if hot.len() < 2 {
            return pushed;
        }
        for a in hot {
            let sid = SiteId(a);
            let set = self.residency.entry(file).or_default();
            if !set.contains(&sid) {
                set.insert(sid);
                pushed.push(sid);
            }
        }
        pushed
    }

    /// Site destroyed: purge it from residency. Returns files whose *last*
    /// copy lived there (unrecoverable without geo replicas).
    pub fn fail_site(&mut self, site: SiteId) -> Vec<u64> {
        let mut lost = Vec::new();
        for (&file, set) in self.residency.iter_mut() {
            if set.remove(&site) && set.is_empty() {
                lost.push(file);
            }
        }
        lost.sort_unstable();
        lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ys_simcore::time::SimDuration;
    use ys_simnet::catalog;

    fn topo() -> SiteTopology {
        let mut t = SiteTopology::new(&["a", "b", "c"]);
        t.connect(SiteId(0), SiteId(1), catalog::oc768(), 30.0);
        t.connect(SiteId(0), SiteId(2), catalog::oc192(), 4000.0);
        t.connect(SiteId(1), SiteId(2), catalog::oc192(), 4000.0);
        t
    }

    #[test]
    fn first_reference_migrates_then_local() {
        let t = topo();
        let mut d = DistributedAccess::new(60.0, 3.0);
        d.set_home(1, SiteId(0));
        assert_eq!(
            d.read(&t, 1, SiteId(1), SimTime::ZERO),
            AccessKind::RemoteMigration { from: SiteId(0) }
        );
        assert_eq!(d.read(&t, 1, SiteId(1), SimTime(1)), AccessKind::Local, "second read is local");
        assert!(d.is_resident(1, SiteId(1)));
    }

    #[test]
    fn migration_pulls_from_nearest_holder() {
        let t = topo();
        let mut d = DistributedAccess::new(60.0, 3.0);
        d.set_home(1, SiteId(1)); // 30 km from site 0
        d.set_home(1, SiteId(2)); // 4000 km from site 0
        assert_eq!(
            d.read(&t, 1, SiteId(0), SimTime::ZERO),
            AccessKind::RemoteMigration { from: SiteId(1) }
        );
    }

    #[test]
    fn write_invalidates_remote_copies() {
        let t = topo();
        let mut d = DistributedAccess::new(60.0, 3.0);
        d.set_home(1, SiteId(0));
        d.read(&t, 1, SiteId(1), SimTime::ZERO); // copy at both
        d.write(1, SiteId(0), SimTime(1));
        assert_eq!(d.sites_of(1), vec![SiteId(0)], "writer is the sole holder");
        assert!(matches!(d.read(&t, 1, SiteId(1), SimTime(2)), AccessKind::RemoteMigration { .. }));
    }

    #[test]
    fn auto_replication_pushes_to_multi_hot_sites() {
        let t = topo();
        let mut d = DistributedAccess::new(1000.0, 3.0);
        d.set_home(9, SiteId(0));
        // Site 2 hammers the file; writes at site 0 keep invalidating it.
        for i in 0..6u64 {
            d.read(&t, 9, SiteId(2), SimTime(i));
            d.write(9, SiteId(0), SimTime(i));
        }
        // Heat at both sites 0 and 2 → push a copy back to 2.
        let pushed = d.auto_replicate(9, SimTime(100));
        assert_eq!(pushed, vec![SiteId(2)]);
        assert_eq!(d.read(&t, 9, SiteId(2), SimTime(101)), AccessKind::Local);
    }

    #[test]
    fn single_site_heat_does_not_trigger_push() {
        let mut d = DistributedAccess::new(1000.0, 2.0);
        d.set_home(1, SiteId(0));
        for i in 0..10u64 {
            d.write(1, SiteId(0), SimTime(i));
        }
        assert!(d.auto_replicate(1, SimTime(20)).is_empty());
    }

    #[test]
    fn unavailable_when_no_holder() {
        let t = topo();
        let mut d = DistributedAccess::new(60.0, 3.0);
        assert_eq!(d.read(&t, 42, SiteId(0), SimTime::ZERO), AccessKind::Unavailable);
    }

    #[test]
    fn site_failure_loses_sole_copies_only() {
        let t = topo();
        let mut d = DistributedAccess::new(60.0, 3.0);
        d.set_home(1, SiteId(0)); // only at 0
        d.set_home(2, SiteId(0));
        d.read(&t, 2, SiteId(1), SimTime::ZERO); // file 2 also at 1 now
        let lost = d.fail_site(SiteId(0));
        assert_eq!(lost, vec![1], "file 2 survives at site 1");
        assert_eq!(d.sites_of(2), vec![SiteId(1)]);
    }

    #[test]
    fn heat_decays_so_old_interest_fades() {
        let t = topo();
        let mut d = DistributedAccess::new(1.0, 3.0); // 1 s half-life
        d.set_home(5, SiteId(0));
        for i in 0..8u64 {
            d.read(&t, 5, SiteId(1), SimTime(i));
            d.write(5, SiteId(0), SimTime(i));
        }
        let much_later = SimTime::ZERO + SimDuration::from_secs(60);
        assert!(d.auto_replicate(5, much_later).is_empty(), "heat decayed");
    }
}

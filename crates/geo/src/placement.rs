//! Replica-site selection under §6.2/§7.2 policies: "a file could be
//! synchronously replicated to a center close by, and then, asynchronously
//! replicated to further distances. Users could specify the number of sites
//! ... or specific replication sites."

use crate::topology::{SiteId, SiteTopology};
use ys_pfs::GeoPolicy;

/// The outcome of placement: which sites hold copies and how each copy is
/// kept current.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Placement {
    pub home: SiteId,
    /// Sites updated synchronously with the host write.
    pub sync_sites: Vec<SiteId>,
    /// Sites updated from the write-ordered journal.
    pub async_sites: Vec<SiteId>,
}

impl Placement {
    pub fn all_sites(&self) -> Vec<SiteId> {
        let mut v = vec![self.home];
        v.extend(&self.sync_sites);
        v.extend(&self.async_sites);
        v
    }

    pub fn copies(&self) -> usize {
        1 + self.sync_sites.len() + self.async_sites.len()
    }
}

/// Placement failures.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum PlacementError {
    /// Fewer reachable sites than the policy demands.
    NotEnoughSites { wanted: usize, reachable: usize },
    /// No reachable site satisfies the minimum distance.
    MinDistanceUnsatisfiable { min_km: f64 },
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::NotEnoughSites { wanted, reachable } => {
                write!(f, "policy wants {wanted} sites, only {reachable} reachable")
            }
            PlacementError::MinDistanceUnsatisfiable { min_km } => {
                write!(f, "no reachable site at ≥ {min_km} km")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// Choose replica sites for a file homed at `home` under `policy`.
///
/// Strategy (distance-tiered, per the paper): prefer the policy's pinned
/// sites; otherwise take nearest sites first. The nearest replica is
/// synchronous when the policy is synchronous; extra copies beyond the
/// first replica are shipped asynchronously ("synchronously replicated to a
/// center close by, and then asynchronously ... to further distances").
/// At least one replica must satisfy `min_distance_km` if set.
pub fn place(topology: &SiteTopology, home: SiteId, policy: &GeoPolicy) -> Result<Placement, PlacementError> {
    use ys_pfs::GeoMode;
    let needed = policy.site_copies.saturating_sub(1);
    if needed == 0 || policy.mode == GeoMode::None {
        return Ok(Placement { home, sync_sites: vec![], async_sites: vec![] });
    }
    // Candidate order: pinned sites first (in given order), then nearest.
    let mut candidates: Vec<SiteId> = Vec::new();
    for &p in &policy.preferred_sites {
        let sid = SiteId(p);
        if sid != home && topology.link(home, sid).is_some() {
            candidates.push(sid);
        }
    }
    for s in topology.nearest_sites(home) {
        if !candidates.contains(&s) {
            candidates.push(s);
        }
    }
    if candidates.len() < needed {
        return Err(PlacementError::NotEnoughSites { wanted: policy.site_copies, reachable: candidates.len() + 1 });
    }
    let mut chosen: Vec<SiteId> = candidates.iter().copied().take(needed).collect();
    // Enforce min distance: at least one chosen site must be far enough.
    if policy.min_distance_km > 0.0
        && !chosen.iter().any(|&s| topology.distance_km(home, s) >= policy.min_distance_km)
    {
        match candidates
            .iter()
            .copied()
            .find(|&s| topology.distance_km(home, s) >= policy.min_distance_km)
        {
            Some(far) => {
                // Swap the farthest-needed site in for the last choice.
                *chosen.last_mut().expect("needed ≥ 1") = far;
            }
            None => return Err(PlacementError::MinDistanceUnsatisfiable { min_km: policy.min_distance_km }),
        }
    }
    let (sync_sites, async_sites) = match policy.mode {
        GeoMode::Synchronous => {
            // Nearest chosen replica is synchronous; the rest follow async.
            let first = chosen[0];
            (vec![first], chosen[1..].to_vec())
        }
        GeoMode::Asynchronous => (vec![], chosen),
        GeoMode::None => unreachable!("handled above"),
    };
    Ok(Placement { home, sync_sites, async_sites })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ys_pfs::GeoPolicy;
    use ys_simnet::catalog;

    fn topo() -> SiteTopology {
        let mut t = SiteTopology::new(&["home", "metro", "regional", "continental"]);
        t.connect(SiteId(0), SiteId(1), catalog::oc768(), 20.0);
        t.connect(SiteId(0), SiteId(2), catalog::oc192(), 800.0);
        t.connect(SiteId(0), SiteId(3), catalog::oc48(), 6000.0);
        t
    }

    #[test]
    fn no_replication_stays_home() {
        let t = topo();
        let p = place(&t, SiteId(0), &GeoPolicy::none()).unwrap();
        assert_eq!(p.copies(), 1);
        assert!(p.sync_sites.is_empty() && p.async_sites.is_empty());
    }

    #[test]
    fn sync_policy_picks_nearest_sync_then_async_tail() {
        let t = topo();
        let p = place(&t, SiteId(0), &GeoPolicy::sync(3)).unwrap();
        assert_eq!(p.sync_sites, vec![SiteId(1)], "nearest is synchronous");
        assert_eq!(p.async_sites, vec![SiteId(2)], "farther copy is async");
        assert_eq!(p.copies(), 3);
    }

    #[test]
    fn async_policy_has_no_sync_sites() {
        let t = topo();
        let p = place(&t, SiteId(0), &GeoPolicy::async_(2)).unwrap();
        assert!(p.sync_sites.is_empty());
        assert_eq!(p.async_sites, vec![SiteId(1)]);
    }

    #[test]
    fn preferred_sites_win_over_distance() {
        let t = topo();
        let mut pol = GeoPolicy::sync(2);
        pol.preferred_sites = vec![3];
        let p = place(&t, SiteId(0), &pol).unwrap();
        assert_eq!(p.sync_sites, vec![SiteId(3)], "pinned site selected despite distance");
    }

    #[test]
    fn min_distance_forces_a_far_replica() {
        let t = topo();
        let mut pol = GeoPolicy::sync(2);
        pol.min_distance_km = 5000.0;
        let p = place(&t, SiteId(0), &pol).unwrap();
        assert_eq!(p.sync_sites, vec![SiteId(3)], "only the continental site satisfies 5000 km");
    }

    #[test]
    fn min_distance_unsatisfiable_errors() {
        let t = topo();
        let mut pol = GeoPolicy::sync(2);
        pol.min_distance_km = 50_000.0;
        assert_eq!(
            place(&t, SiteId(0), &pol).unwrap_err(),
            PlacementError::MinDistanceUnsatisfiable { min_km: 50_000.0 }
        );
    }

    #[test]
    fn too_many_copies_errors() {
        let t = topo();
        let pol = GeoPolicy::sync(10);
        assert!(matches!(place(&t, SiteId(0), &pol), Err(PlacementError::NotEnoughSites { .. })));
    }

    #[test]
    fn failed_sites_are_skipped() {
        let mut t = topo();
        t.fail_site(SiteId(1));
        let p = place(&t, SiteId(0), &GeoPolicy::sync(2)).unwrap();
        assert_eq!(p.sync_sites, vec![SiteId(2)], "metro down, regional takes over");
    }
}

//! The background scrubber: a deterministic volume walk that detects
//! latent media errors and repairs them from the best available source.
//!
//! A scrub pass is Scavenger-class work: each batch passes QoS admission
//! as a configured tenant before touching the disks, so foreground
//! tenants are never stalled by integrity maintenance. Repair tries
//! sources in a fixed order — RAID redundancy, then a cached replica,
//! then a geographic remote copy — and a page no source can fix becomes
//! an explicit [`ScrubLoss`], mirroring the cache's `DataLost` tombstone
//! discipline: loss is always declared, never silent.

use ys_core::{BladeCluster, ClusterError, NetStorage};
use ys_geo::SiteId;
use ys_simcore::time::{SimDuration, SimTime};
use ys_virt::VolumeId;

/// What the scrubber operates on.
pub enum ScrubTarget<'a> {
    /// A single site cluster; the geo repair source is unavailable.
    Cluster(&'a mut BladeCluster),
    /// One site of a multi-site system; rotten pages may be re-fetched
    /// from a remote replica as the repair source of last resort.
    Site(&'a mut NetStorage, SiteId),
}

impl std::fmt::Debug for ScrubTarget<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScrubTarget::Cluster(_) => write!(f, "ScrubTarget::Cluster"),
            ScrubTarget::Site(_, s) => write!(f, "ScrubTarget::Site({s:?})"),
        }
    }
}

impl ScrubTarget<'_> {
    fn cluster(&mut self) -> &mut BladeCluster {
        match self {
            ScrubTarget::Cluster(c) => c,
            ScrubTarget::Site(ns, s) => &mut ns.clusters[s.0],
        }
    }

    /// Read-only view of the target's cluster.
    pub fn cluster_ref(&self) -> &BladeCluster {
        match self {
            ScrubTarget::Cluster(c) => c,
            ScrubTarget::Site(ns, s) => &ns.clusters[s.0],
        }
    }

    fn geo_fetch(&mut self, now: SimTime, vol: VolumeId, page: u64) -> Option<SimTime> {
        match self {
            ScrubTarget::Cluster(_) => None,
            ScrubTarget::Site(ns, s) => ns.geo_fetch_page(now, *s, vol, page),
        }
    }
}

/// Scrub pass policy.
#[derive(Clone, Debug)]
pub struct ScrubConfig {
    /// QoS tenant the scrub's batches are admitted as (Scavenger-class in
    /// the shipped configurations). `None` runs administratively, without
    /// admission control — the mode fault campaigns use to converge.
    pub tenant: Option<u32>,
    /// Pages verified per admitted batch.
    pub pages_per_tick: u64,
    /// Virtual-time backoff after a shed batch, before retrying.
    pub shed_backoff: SimDuration,
    /// After this many consecutive sheds one batch runs without admission,
    /// so a scrub pass always finishes even under sustained pressure
    /// (integrity maintenance degrades to a trickle, never to zero).
    pub max_consecutive_sheds: u64,
}

impl Default for ScrubConfig {
    fn default() -> ScrubConfig {
        ScrubConfig {
            tenant: None,
            pages_per_tick: 8,
            shed_backoff: SimDuration::from_millis(10),
            max_consecutive_sheds: 64,
        }
    }
}

/// A page the scrubber could not repair from any source: the explicit
/// declaration that its bytes are gone (the integrity analogue of the
/// cache's `DataLost` tombstone).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ScrubLoss {
    /// Volume holding the unrepairable page.
    pub vol: VolumeId,
    /// Page index within the volume.
    pub page: u64,
}

/// What one scrub pass found and did.
#[derive(Clone, Debug, Default)]
pub struct ScrubReport {
    /// Pages verified.
    pub pages_scanned: u64,
    /// Pages whose verification found at least one checksum mismatch.
    pub mismatch_pages: u64,
    /// Mismatched pages repaired from RAID redundancy.
    pub repaired_parity: u64,
    /// Mismatched pages repaired by rewriting a surviving cached replica.
    pub repaired_replica: u64,
    /// Mismatched pages repaired from a geographic remote copy.
    pub repaired_geo: u64,
    /// Pages no source could repair — explicit, attributed losses.
    pub losses: Vec<ScrubLoss>,
    /// Pages the pass could not even read (e.g. RAID group down beyond
    /// tolerance); they remain unverified, not silently passed.
    pub unreadable: u64,
    /// Batches executed.
    pub ticks: u64,
    /// Batches shed by QoS admission (retried later).
    pub shed_ticks: u64,
    /// Batches forced through after `max_consecutive_sheds`.
    pub forced_ticks: u64,
}

impl ScrubReport {
    /// Total pages repaired, across all sources.
    pub fn repaired(&self) -> u64 {
        self.repaired_parity + self.repaired_replica + self.repaired_geo
    }

    /// Every detected mismatch was repaired: nothing lost, nothing left.
    pub fn fully_repaired(&self) -> bool {
        self.losses.is_empty() && self.unreadable == 0 && self.repaired() == self.mismatch_pages
    }

    /// Every detected mismatch reached a verdict — repaired or an explicit
    /// loss. This is the invariant scrubbing exists to uphold; only
    /// unreadable pages (no data path at all) escape it.
    pub fn all_accounted(&self) -> bool {
        self.repaired() + self.losses.len() as u64 == self.mismatch_pages
    }
}

impl std::fmt::Display for ScrubReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scrub: {} pages, {} mismatched, repaired {} (parity {}, replica {}, geo {}), \
             lost {}, unreadable {}, ticks {} (shed {}, forced {})",
            self.pages_scanned,
            self.mismatch_pages,
            self.repaired(),
            self.repaired_parity,
            self.repaired_replica,
            self.repaired_geo,
            self.losses.len(),
            self.unreadable,
            self.ticks,
            self.shed_ticks,
            self.forced_ticks,
        )
    }
}

/// A scrub pass in progress: a deterministic cursor over every mapped
/// page of every volume, plus the accumulated [`ScrubReport`].
#[derive(Debug)]
pub struct Scrubber {
    cfg: ScrubConfig,
    /// (volume, page) work list in (group, volume id, page) order.
    work: Vec<(VolumeId, u64)>,
    cursor: usize,
    consecutive_sheds: u64,
    report: ScrubReport,
}

impl Scrubber {
    /// Plan a full pass over `cluster`'s mapped pages. The walk order is a
    /// pure function of the volume maps, so identical clusters scrub in
    /// identical order.
    pub fn new(cfg: ScrubConfig, cluster: &BladeCluster) -> Scrubber {
        let pb = cluster.config().page_bytes;
        let ppe = cluster.extent_bytes() / pb;
        let mut work = Vec::new();
        for vol in cluster.volume_ids() {
            for ext in cluster.mapped_extents(vol) {
                for p in 0..ppe {
                    work.push((vol, ext * ppe + p));
                }
            }
        }
        Scrubber { cfg, work, cursor: 0, consecutive_sheds: 0, report: ScrubReport::default() }
    }

    /// Whether the pass has covered its whole work list.
    pub fn is_done(&self) -> bool {
        self.cursor >= self.work.len()
    }

    /// Pages planned for this pass.
    pub fn planned_pages(&self) -> usize {
        self.work.len()
    }

    /// The accumulated report (final once [`Scrubber::is_done`]).
    pub fn report(&self) -> &ScrubReport {
        &self.report
    }

    /// Run one batch: admit it under the configured QoS tenant, verify up
    /// to `pages_per_tick` pages, repair or declare what fails. Returns
    /// the batch completion time (== `now` when shed or already done).
    pub fn tick(&mut self, target: &mut ScrubTarget<'_>, now: SimTime) -> Result<SimTime, ClusterError> {
        if self.is_done() {
            return Ok(now);
        }
        let pb = target.cluster_ref().config().page_bytes;
        let batch = (self.work.len() - self.cursor).min(self.cfg.pages_per_tick as usize);
        let bytes = batch as u64 * pb;
        let mut forced = false;
        let start = match self.cfg.tenant {
            Some(t) if self.consecutive_sheds < self.cfg.max_consecutive_sheds => {
                match target.cluster().qos_admit_as(now, t, bytes) {
                    Ok(s) => s,
                    Err(ClusterError::QosShed { .. }) => {
                        self.report.shed_ticks += 1;
                        self.consecutive_sheds += 1;
                        return Ok(now);
                    }
                    Err(e) => return Err(e),
                }
            }
            Some(_) => {
                forced = true;
                now
            }
            None => now,
        };
        let mut done = start;
        for _ in 0..batch {
            let (vol, page) = self.work[self.cursor];
            self.cursor += 1;
            done = done.max(self.scrub_one(target, done, vol, page)?);
        }
        if let Some(t) = self.cfg.tenant {
            if !forced {
                target.cluster().qos_complete_as(t, now, done, bytes);
            }
        }
        self.report.ticks += 1;
        self.report.forced_ticks += u64::from(forced);
        self.consecutive_sheds = 0;
        Ok(done)
    }

    /// Drive the pass to completion, backing off in virtual time after
    /// each shed batch. Returns the completion time.
    pub fn run(&mut self, target: &mut ScrubTarget<'_>, mut now: SimTime) -> Result<SimTime, ClusterError> {
        while !self.is_done() {
            let sheds = self.report.shed_ticks;
            now = self.tick(target, now)?;
            if self.report.shed_ticks > sheds {
                now += self.cfg.shed_backoff;
            }
        }
        Ok(now)
    }

    /// Verify one page; on mismatch, walk the repair-source chain and
    /// re-verify after each attempt. A page that exhausts every source is
    /// recorded as a [`ScrubLoss`] and counted on the cluster's stats.
    fn scrub_one(
        &mut self,
        target: &mut ScrubTarget<'_>,
        now: SimTime,
        vol: VolumeId,
        page: u64,
    ) -> Result<SimTime, ClusterError> {
        let Some(blade) = target.cluster_ref().any_up_blade() else {
            self.report.unreadable += 1;
            return Ok(now);
        };
        let pv = match target.cluster().verify_page(now, blade, vol, page) {
            Ok(pv) => pv,
            Err(_) => {
                // No data path to the page at all (e.g. group down beyond
                // tolerance): it stays unverified, visibly.
                self.report.unreadable += 1;
                return Ok(now);
            }
        };
        self.report.pages_scanned += 1;
        let mut done = pv.done;
        if pv.mismatches.is_empty() {
            return Ok(done);
        }
        self.report.mismatch_pages += 1;

        // Source 1: RAID redundancy, span by span.
        let mut parity_ok = true;
        for m in &pv.mismatches {
            match target.cluster().repair_disk_span_from_parity(done, blade, m.disk, m.offset, m.bytes) {
                Ok(d) => done = done.max(d),
                Err(_) => parity_ok = false,
            }
        }
        if parity_ok {
            let check = target.cluster().verify_page(done, blade, vol, page)?;
            if check.mismatches.is_empty() {
                self.report.repaired_parity += 1;
                return Ok(check.done);
            }
            done = check.done;
        }

        // Source 2: a surviving cached replica is the current data —
        // rewriting it lays down fresh checksums.
        if let Some(d) = target.cluster().rewrite_page_from_cache(done, vol, page)? {
            let check = target.cluster().verify_page(d, blade, vol, page)?;
            if check.mismatches.is_empty() {
                self.report.repaired_replica += 1;
                return Ok(check.done);
            }
            done = check.done;
        }

        // Source 3: a geographic remote copy of the same data image.
        if let Some(d) = target.geo_fetch(done, vol, page) {
            let check = target.cluster().verify_page(d, blade, vol, page)?;
            if check.mismatches.is_empty() {
                self.report.repaired_geo += 1;
                return Ok(check.done);
            }
            done = check.done;
        }

        // Every source exhausted: declare the loss, loudly.
        target.cluster().stats.scrub_losses += 1;
        self.report.losses.push(ScrubLoss { vol, page });
        Ok(done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ys_cache::Retention;
    use ys_core::ClusterConfig;
    use ys_simdisk::DiskId;

    fn small() -> (BladeCluster, VolumeId) {
        let mut c = BladeCluster::new(ClusterConfig::default().with_blades(2).with_disks(6));
        let vol = c.create_volume("scrub-test", 0, 1 << 30).unwrap();
        (c, vol)
    }

    fn write_and_drain(c: &mut BladeCluster, vol: VolumeId, bytes: u64) -> SimTime {
        let mut t = SimTime::ZERO;
        for off in (0..bytes).step_by(1 << 20) {
            t = c.write(t, 0, vol, off, 1 << 20, 2, Retention::Normal).unwrap().done;
        }
        c.drain().max(t)
    }

    fn clear_cache(c: &mut BladeCluster, vol: VolumeId, pages: u64) {
        for p in 0..pages {
            c.cache.invalidate_page(ys_cache::PageKey::new(vol.0, p));
        }
    }

    #[test]
    fn clean_volume_scrubs_clean() {
        let (mut c, vol) = small();
        let t = write_and_drain(&mut c, vol, 4 << 20);
        let mut s = Scrubber::new(ScrubConfig::default(), &c);
        assert_eq!(s.planned_pages(), 64, "4 MiB / 64 KiB pages");
        let mut target = ScrubTarget::Cluster(&mut c);
        let end = s.run(&mut target, t).unwrap();
        assert!(end >= t);
        let r = s.report();
        assert_eq!(r.pages_scanned, 64);
        assert_eq!(r.mismatch_pages, 0);
        assert!(r.fully_repaired());
    }

    #[test]
    fn parity_repairs_rot_on_a_healthy_group() {
        let (mut c, vol) = small();
        let t = write_and_drain(&mut c, vol, 4 << 20);
        clear_cache(&mut c, vol, 64);
        assert!(c.corrupt_volume_page(vol, 7).is_some());
        assert!(c.corrupt_volume_page(vol, 30).is_some());
        let mut s = Scrubber::new(ScrubConfig::default(), &c);
        let mut target = ScrubTarget::Cluster(&mut c);
        s.run(&mut target, t).unwrap();
        let r = s.report();
        assert_eq!(r.mismatch_pages, 2);
        assert_eq!(r.repaired_parity, 2);
        assert!(r.fully_repaired());
        assert_eq!(c.corrupt_page_count(), 0, "media actually repaired");
        assert_eq!(c.stats.scrub_losses, 0);
    }

    #[test]
    fn cached_replica_repairs_when_parity_cannot() {
        let (mut c, vol) = small();
        let t = write_and_drain(&mut c, vol, 4 << 20);
        // Degrade the group: RAID5 tolerance is spent, parity can't help.
        c.fail_disk(DiskId(5));
        let (disk, _) = c.locate_volume_page(vol, 3).unwrap();
        if disk == DiskId(5) {
            return; // page lives on the failed member; scenario is moot
        }
        assert!(c.corrupt_volume_page(vol, 3).is_some());
        let mut s = Scrubber::new(ScrubConfig::default(), &c);
        let mut target = ScrubTarget::Cluster(&mut c);
        s.run(&mut target, t).unwrap();
        let r = s.report();
        assert_eq!(r.mismatch_pages, 1);
        assert_eq!(r.repaired_parity, 0);
        assert_eq!(r.repaired_replica, 1, "cache still holds the page");
        assert!(r.fully_repaired());
    }

    #[test]
    fn exhausted_sources_declare_explicit_loss() {
        let (mut c, vol) = small();
        let t = write_and_drain(&mut c, vol, 4 << 20);
        c.fail_disk(DiskId(5));
        clear_cache(&mut c, vol, 64);
        let (disk, _) = c.locate_volume_page(vol, 9).unwrap();
        if disk == DiskId(5) {
            return;
        }
        assert!(c.corrupt_volume_page(vol, 9).is_some());
        let mut s = Scrubber::new(ScrubConfig::default(), &c);
        let mut target = ScrubTarget::Cluster(&mut c);
        s.run(&mut target, t).unwrap();
        let r = s.report();
        assert_eq!(r.mismatch_pages, 1);
        assert_eq!(r.repaired(), 0);
        assert_eq!(r.losses, vec![ScrubLoss { vol, page: 9 }]);
        assert!(r.all_accounted(), "loss is declared, not dropped");
        assert_eq!(c.stats.scrub_losses, 1);
        // The rot stays on the media: a later read still surfaces it.
        let (_, off) = c.locate_volume_page(vol, 9).unwrap();
        assert!(c.disk_page_corrupt(disk, off));
    }

    #[test]
    fn scrub_walk_order_is_deterministic() {
        let build = || {
            let (mut c, vol) = small();
            write_and_drain(&mut c, vol, 4 << 20);
            (c, vol)
        };
        let (c1, _) = build();
        let (c2, _) = build();
        let s1 = Scrubber::new(ScrubConfig::default(), &c1);
        let s2 = Scrubber::new(ScrubConfig::default(), &c2);
        assert_eq!(s1.work, s2.work);
    }
}

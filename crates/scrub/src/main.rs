//! `ys-scrub` — run a seeded end-to-end latent-error campaign.
//!
//! Exit codes: `0` every injected corruption was detected and repaired or
//! explicitly declared lost, `1` the audit failed, `2` usage.

use std::process::ExitCode;
use ys_scrub::{run_campaign, CampaignConfig};

const USAGE: &str = "\
ys-scrub: end-to-end data-integrity campaign

USAGE:
    ys-scrub [--seed N] [--errors N] [--quiet] [--double-run]

OPTIONS:
    --seed N      Injection-schedule seed (default 0).
    --errors N    Latent errors to inject, round-robin over the four
                  protection classes: RAID parity, cached replica,
                  geo replica, and unprotected (default 64).
    --quiet       Only the verdict line.
    --double-run  Run the identical campaign twice in one process and
                  fail unless the transcripts are byte-identical.
    -h, --help    This help.

The campaign builds a three-site NetStorage system, injects the errors
across RAID-protected, cache-resident, geo-replicated, and unprotected
data, scrubs every site, and audits that each corruption is repaired
(with the source attributed) or explicitly declared lost — never silent.";

struct Args {
    cfg: CampaignConfig,
    quiet: bool,
    double_run: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { cfg: CampaignConfig::default(), quiet: false, double_run: false };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.cfg.seed = v.parse().map_err(|_| format!("bad --seed {v}"))?;
            }
            "--errors" => {
                let v = it.next().ok_or("--errors needs a value")?;
                args.cfg.errors = v.parse().map_err(|_| format!("bad --errors {v}"))?;
            }
            "--quiet" => args.quiet = true,
            "--double-run" => args.double_run = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) if e.is_empty() => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("ys-scrub: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let report = run_campaign(&args.cfg);
    if !args.quiet {
        print!("{report}");
    }

    let mut deterministic = true;
    if args.double_run {
        let second = run_campaign(&args.cfg);
        deterministic = second.lines == report.lines;
        if deterministic {
            println!("ys-scrub: double-run transcripts byte-identical");
        } else {
            println!("ys-scrub: DOUBLE-RUN MISMATCH — campaign replay determinism is broken");
        }
    }

    let ok = report.ok && deterministic;
    println!("ys-scrub: seed {} {}", args.cfg.seed, if ok { "PASS" } else { "FAIL" });
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

//! `ys-scrub` — end-to-end data integrity for the NetStorage machine.
//!
//! The paper's shared-storage pool is only as useful as the bytes it gives
//! back: a national-lab archive holds data for decades, long enough for
//! latent media errors ("bit rot") to accumulate silently. This crate closes
//! the integrity loop over the rest of the workspace:
//!
//! * `ys-simdisk` carries a deterministic per-page checksum plane and a
//!   seeded latent-error fault model (`corrupt_page`): rot is silent until a
//!   *verified* read covers it;
//! * every foreground fill path in `ys-core` (cache miss, prefetch, RAID
//!   rebuild source reads, geo installs) verifies checksums and surfaces
//!   [`ys_core::ClusterError::Integrity`] — mismatched bytes never propagate
//!   silently, the same discipline as the cache's `DataLost` tombstones;
//! * [`scrubber`] — the background [`Scrubber`] walks
//!   volumes in deterministic extent order under a Scavenger-class QoS
//!   budget, detects mismatches, and drives **multi-source repair**: RAID
//!   redundancy first, an N-way cached replica second, a geographic remote
//!   copy third; unrepairable pages become explicit
//!   [`ScrubLoss`] entries, never clean-looking reads;
//! * [`campaign`] — a seeded end-to-end latent-error campaign that injects
//!   dozens of corruptions across RAID-protected, cache-resident, and
//!   geo-replicated data and audits that every one is repaired (with the
//!   repair source attributed) or explicitly declared lost.

#![warn(missing_docs)]

pub mod campaign;
pub mod scrubber;

pub use campaign::{run_campaign, CampaignConfig, CampaignReport};
pub use scrubber::{ScrubConfig, ScrubLoss, ScrubReport, ScrubTarget, Scrubber};

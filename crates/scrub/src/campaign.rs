//! Seeded end-to-end latent-error campaigns.
//!
//! A campaign builds a three-site NetStorage system, lays data with four
//! different protection postures, injects a seeded batch of latent media
//! errors across all of them, scrubs every site, and audits the outcome:
//! every injected corruption must be detected and either repaired — with
//! the repair source attributed — or explicitly declared lost. Reads
//! after the scrub must never return mismatched bytes silently: clean
//! data reads clean, declared-lost data errors loudly.

use crate::scrubber::{ScrubConfig, ScrubReport, ScrubTarget, Scrubber};
use ys_cache::PageKey;
use ys_core::{ClusterConfig, ClusterError, NetError, NetStorage, NetStorageConfig};
use ys_geo::SiteId;
use ys_pfs::{FilePolicy, GeoPolicy};
use ys_raid::RaidLevel;
use ys_simcore::time::SimTime;
use ys_simcore::Rng;

/// Which protection posture a corruption was injected under — and thus
/// which repair source (or loss) the audit expects.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ErrorClass {
    /// Healthy RAID5 data: parity reconstructs the span.
    Parity,
    /// RAID0 data, page still cache-resident: replica rewrite.
    Replica,
    /// RAID0 data, cache cold, sync geo replica: remote re-fetch.
    Geo,
    /// RAID0 data, cache cold, no replica anywhere: explicit loss.
    Loss,
}

impl ErrorClass {
    fn name(self) -> &'static str {
        match self {
            ErrorClass::Parity => "parity",
            ErrorClass::Replica => "replica",
            ErrorClass::Geo => "geo",
            ErrorClass::Loss => "loss",
        }
    }
}

/// One injected latent error, for the audit trail.
#[derive(Clone, Copy, Debug)]
struct Injected {
    class: ErrorClass,
    site: SiteId,
    vol: ys_virt::VolumeId,
    page: u64,
    disk: ys_simdisk::DiskId,
    offset: u64,
}

/// Campaign parameters.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Seed for the injection schedule.
    pub seed: u64,
    /// Latent errors to inject, spread round-robin over the four classes.
    pub errors: usize,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig { seed: 0, errors: 64 }
    }
}

/// Campaign outcome: the per-site scrub reports plus the audit verdict.
#[derive(Clone, Debug, Default)]
pub struct CampaignReport {
    /// Errors actually injected.
    pub injected: usize,
    /// Injected count per class: parity / replica / geo / loss.
    pub injected_per_class: [usize; 4],
    /// Scrub report per site id.
    pub site_reports: Vec<ScrubReport>,
    /// Mismatched pages detected across all sites.
    pub detected: u64,
    /// Pages repaired from parity across all sites.
    pub repaired_parity: u64,
    /// Pages repaired from a cached replica across all sites.
    pub repaired_replica: u64,
    /// Pages repaired from a geo remote copy across all sites.
    pub repaired_geo: u64,
    /// Pages explicitly declared lost across all sites.
    pub declared_lost: u64,
    /// Injected corruptions neither cleared from the media nor covered by
    /// a `ScrubLoss` declaration — the silent residue. Must be zero.
    pub unaccounted: usize,
    /// Post-scrub foreground reads that returned mismatched data without
    /// an error. Must be zero, always.
    pub silent_reads: u64,
    /// Post-scrub reads of declared-lost data that correctly errored.
    pub explicit_loss_reads: u64,
    /// Human-readable campaign transcript.
    pub lines: Vec<String>,
    /// The audit verdict.
    pub ok: bool,
}

impl std::fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for l in &self.lines {
            writeln!(f, "{l}")?;
        }
        Ok(())
    }
}

const FILE_MB: u64 = 8;

/// Run one seeded campaign end to end. Deterministic: the transcript and
/// verdict are pure functions of the config.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let mut r = CampaignReport::default();
    match drive(cfg, &mut r) {
        Ok(()) => {}
        Err(e) => {
            r.lines.push(format!("campaign aborted: {e}"));
            r.ok = false;
        }
    }
    r
}

enum CampaignError {
    Net(NetError),
    Cluster(ClusterError),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Net(e) => write!(f, "{e}"),
            CampaignError::Cluster(e) => write!(f, "{e}"),
        }
    }
}

impl From<NetError> for CampaignError {
    fn from(e: NetError) -> Self {
        CampaignError::Net(e)
    }
}

impl From<ClusterError> for CampaignError {
    fn from(e: ClusterError) -> Self {
        CampaignError::Cluster(e)
    }
}

fn drive(cfg: &CampaignConfig, r: &mut CampaignReport) -> Result<(), CampaignError> {
    // Group 0: the default RAID5 pool (parity repairs). Group 1: a RAID0
    // class — the §4 per-file override — whose data has no on-site
    // redundancy, forcing repair to fall through to replica/geo sources.
    let site_cluster = ClusterConfig::default()
        .with_blades(2)
        .with_disks(6)
        .with_clients(2)
        .with_extra_group(RaidLevel::Raid0, 4, 64 << 10);
    let mut ns = NetStorage::new(NetStorageConfig { site_cluster, ..NetStorageConfig::default() });
    r.lines.push(format!(
        "ys-scrub campaign: seed {} errors {} over 3 sites (RAID5 pool + RAID0 class)",
        cfg.seed, cfg.errors
    ));

    // Four files, one protection posture each.
    let raid0 = Some(RaidLevel::Raid0);
    let classes = [
        (ErrorClass::Parity, "/parity.dat", SiteId(0), GeoPolicy::none(), None),
        (ErrorClass::Replica, "/replica.dat", SiteId(1), GeoPolicy::none(), raid0),
        (ErrorClass::Geo, "/geo.dat", SiteId(2), GeoPolicy::sync(2), raid0),
        (ErrorClass::Loss, "/loss.dat", SiteId(2), GeoPolicy::none(), raid0),
    ];
    let mut t = SimTime::ZERO;
    // Per class: the file's volume and its (file offset, volume page) map.
    let mut vols = Vec::new();
    let mut pages: Vec<Vec<(u64, u64)>> = Vec::new();
    for (_, path, site, geo, raid) in &classes {
        let pol = FilePolicy { geo: geo.clone(), raid: *raid, ..FilePolicy::default() };
        let ino = ns.create_file(path, pol, *site)?;
        for off in (0..FILE_MB << 20).step_by(1 << 20) {
            t = ns.write_ino(t, *site, 0, ino, off, 1 << 20)?.done;
        }
        let pb = ns.clusters[site.0].config().page_bytes;
        let extents = ns.fs.read(ino, 0, FILE_MB << 20).map_err(NetError::Fs)?;
        let mut file_pages = Vec::new();
        let mut file_off = 0u64;
        for e in &extents {
            for p in e.voff / pb..(e.voff + e.len) / pb {
                file_pages.push((file_off + (p * pb - e.voff), p));
            }
            file_off += e.len;
        }
        vols.push(extents.first().map(|e| e.vol).unwrap_or(ys_virt::VolumeId(0)));
        pages.push(file_pages);
    }
    // Flush write-back so the media holds everything and nothing is dirty.
    for c in &mut ns.clusters {
        let d = c.drain();
        t = t.max(d);
    }
    // Cold caches where the replica source must be unavailable: the
    // parity file at S0 and the geo + loss files at S2.
    for (ci, site) in [(0usize, 0usize), (2, 2), (3, 2)] {
        for (_, p) in &pages[ci] {
            ns.clusters[site].cache.invalidate_page(PageKey::new(vols[ci].0, *p));
        }
    }

    // Seeded injection, round-robin over classes. Two constraints keep
    // each error independently repairable-in-principle: one error per
    // page, and (for the RAID5 parity class) one error per stripe row —
    // parity reconstruction reads the whole row, and a second rotten
    // span there would poison it.
    let mut rng = Rng::new(cfg.seed ^ 0x5c4b_5eed);
    let mut used_pages: Vec<std::collections::BTreeSet<u64>> = vec![Default::default(); 4];
    let mut used_rows: std::collections::BTreeSet<u64> = Default::default();
    let chunk = ns.clusters[0].raid_geometry().chunk_size;
    let mut injected: Vec<Injected> = Vec::new();
    for i in 0..cfg.errors {
        let ci = i % classes.len();
        let class = classes[ci].0;
        let site = classes[ci].2;
        let mut placed = false;
        for _attempt in 0..pages[ci].len() * 4 {
            let idx = rng.next_below(pages[ci].len() as u64) as usize;
            let (_, page) = pages[ci][idx];
            if used_pages[ci].contains(&page) {
                continue;
            }
            let Some((disk, offset)) = ns.clusters[site.0].locate_volume_page(vols[ci], page)
            else {
                continue;
            };
            if class == ErrorClass::Parity && !used_rows.insert(offset / chunk) {
                continue;
            }
            ns.clusters[site.0].corrupt_disk_page(disk, offset);
            used_pages[ci].insert(page);
            injected.push(Injected { class, site, vol: vols[ci], page, disk, offset });
            r.injected_per_class[ci] += 1;
            placed = true;
            break;
        }
        if !placed {
            r.lines.push(format!("  injection {i} ({}) found no eligible page", class.name()));
        }
    }
    r.injected = injected.len();
    r.lines.push(format!(
        "injected {} latent errors (parity {}, replica {}, geo {}, loss {})",
        r.injected,
        r.injected_per_class[0],
        r.injected_per_class[1],
        r.injected_per_class[2],
        r.injected_per_class[3]
    ));

    // Scrub every site to a verdict.
    for s in 0..ns.clusters.len() {
        let mut scrubber = Scrubber::new(ScrubConfig::default(), &ns.clusters[s]);
        let mut target = ScrubTarget::Site(&mut ns, SiteId(s));
        let end = scrubber.run(&mut target, t)?;
        t = t.max(end);
        let rep = scrubber.report().clone();
        r.lines.push(format!("site {s}: {rep}"));
        r.detected += rep.mismatch_pages;
        r.repaired_parity += rep.repaired_parity;
        r.repaired_replica += rep.repaired_replica;
        r.repaired_geo += rep.repaired_geo;
        r.declared_lost += rep.losses.len() as u64;
        r.site_reports.push(rep);
    }

    // Audit 1: every injection is off the media or covered by a loss.
    for inj in &injected {
        let still_rotten = ns.clusters[inj.site.0].disk_page_corrupt(inj.disk, inj.offset);
        let declared = r.site_reports[inj.site.0]
            .losses
            .iter()
            .any(|l| l.vol == inj.vol && l.page == inj.page);
        let accounted = match inj.class {
            ErrorClass::Loss => still_rotten && declared,
            _ => !still_rotten && !declared,
        };
        if !accounted {
            r.unaccounted += 1;
            r.lines.push(format!(
                "  UNACCOUNTED {:?} site {} page {} (rotten={} declared={})",
                inj.class, inj.site.0, inj.page, still_rotten, declared
            ));
        }
    }

    // Audit 2: foreground reads after the scrub. Repaired data must read
    // clean; declared-lost data must error loudly, never return silently.
    for (ci, (class, path, site, _, _)) in classes.iter().enumerate() {
        let pb = ns.clusters[site.0].config().page_bytes;
        for &(file_off, page) in &pages[ci] {
            if !used_pages[ci].contains(&page) {
                continue;
            }
            match ns.read_file(t, *site, 0, path, file_off, pb) {
                Ok(_) if *class == ErrorClass::Loss => r.silent_reads += 1,
                Ok(_) => {}
                Err(NetError::Cluster(ClusterError::Integrity { .. }))
                    if *class == ErrorClass::Loss =>
                {
                    r.explicit_loss_reads += 1;
                }
                Err(e) => {
                    r.silent_reads += 1;
                    r.lines.push(format!("  unexpected read error on {path} page {page}: {e}"));
                }
            }
        }
    }

    let attribution_ok = r.repaired_parity >= r.injected_per_class[0] as u64
        && r.repaired_replica >= r.injected_per_class[1] as u64
        && r.repaired_geo >= r.injected_per_class[2] as u64
        && r.declared_lost == r.injected_per_class[3] as u64;
    r.ok = r.detected == r.injected as u64
        && r.unaccounted == 0
        && r.silent_reads == 0
        && r.explicit_loss_reads == r.injected_per_class[3] as u64
        && attribution_ok;
    r.lines.push(format!(
        "verdict: {} — detected {}/{}, repaired {} (parity {}, replica {}, geo {}), \
         lost {} (all declared), silent reads {}",
        if r.ok { "PASS" } else { "FAIL" },
        r.detected,
        r.injected,
        r.repaired_parity + r.repaired_replica + r.repaired_geo,
        r.repaired_parity,
        r.repaired_replica,
        r.repaired_geo,
        r.declared_lost,
        r.silent_reads
    ));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_campaign_repairs_or_declares_every_error() {
        let r = run_campaign(&CampaignConfig::default());
        assert!(r.ok, "campaign failed:\n{r}");
        assert!(r.injected >= 50, "acceptance floor: >=50 latent errors, got {}", r.injected);
        assert_eq!(r.detected, r.injected as u64);
        assert_eq!(r.unaccounted, 0);
        assert_eq!(r.silent_reads, 0);
        assert!(r.repaired_parity > 0 && r.repaired_replica > 0 && r.repaired_geo > 0);
        assert!(r.declared_lost > 0, "loss class exercises the tombstone path");
    }

    #[test]
    fn campaign_is_deterministic_per_seed() {
        let a = run_campaign(&CampaignConfig { seed: 7, errors: 52 });
        let b = run_campaign(&CampaignConfig { seed: 7, errors: 52 });
        assert_eq!(a.lines, b.lines);
        let c = run_campaign(&CampaignConfig { seed: 8, errors: 52 });
        assert!(c.ok, "every seed must converge:\n{c}");
    }
}

//! Property tests: the integrity promise over random seeds.
//!
//! * Every within-budget corruption (one whose protection class still has
//!   a live repair source) is fully repaired, with the source attributed.
//! * Every beyond-budget corruption (no source anywhere) becomes an
//!   explicit `ScrubLoss` — never a silent clean-looking read.
//! * The campaign transcript is a pure function of the seed.

use proptest::prelude::*;
use ys_scrub::{run_campaign, CampaignConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Corruptions with a live source (parity / replica / geo classes)
    /// are always fully repaired and correctly attributed; the rest are
    /// always declared. Nothing is ever silent.
    #[test]
    fn every_corruption_repaired_or_declared(seed in 0u64..10_000) {
        let r = run_campaign(&CampaignConfig { seed, errors: 56 });
        prop_assert!(r.ok, "seed {} broke the integrity promise:\n{}", seed, r);
        prop_assert_eq!(r.detected, r.injected as u64);
        prop_assert_eq!(r.unaccounted, 0, "silent residue on seed {}", seed);
        prop_assert_eq!(r.silent_reads, 0, "silent mismatched read on seed {}", seed);
        // Within-budget classes repaired from exactly their expected source.
        prop_assert!(r.repaired_parity >= r.injected_per_class[0] as u64);
        prop_assert!(r.repaired_replica >= r.injected_per_class[1] as u64);
        prop_assert!(r.repaired_geo >= r.injected_per_class[2] as u64);
        // Beyond-budget class always explicit, always surfaced on read.
        prop_assert_eq!(r.declared_lost, r.injected_per_class[3] as u64);
        prop_assert_eq!(r.explicit_loss_reads, r.injected_per_class[3] as u64);
    }

    /// Same seed, same transcript — the campaign replays byte-identically.
    #[test]
    fn campaign_transcript_is_seed_deterministic(seed in 0u64..10_000) {
        let a = run_campaign(&CampaignConfig { seed, errors: 52 });
        let b = run_campaign(&CampaignConfig { seed, errors: 52 });
        prop_assert_eq!(a.lines, b.lines);
    }
}

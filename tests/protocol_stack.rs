//! Protocol-stack integration: wire frames decoded into real operations
//! against the pool, with LUN masking enforced in the dispatch path — the
//! "complete range of storage protocols ... all managed from a common
//! pool" of §8.

use bytes::Bytes;
use ys_cache::Retention;
use ys_core::{BladeCluster, ClusterConfig};
use ys_pfs::{FilePolicy, FileSystem};
use ys_proto::{block, file, plan_stream, BlockCmd, FileOp};
use ys_security::{InitiatorId, LunMask};
use ys_simcore::time::SimTime;
use ys_virt::VolumeId;

const KB: u64 = 1 << 10;
const GB: u64 = 1 << 30;

/// A minimal block target: decode → mask check → execute on the cluster.
fn dispatch_block(
    cluster: &mut BladeCluster,
    mask: &LunMask,
    initiator: InitiatorId,
    now: SimTime,
    frame: Bytes,
) -> Result<SimTime, String> {
    let cmd = block::decode(frame).map_err(|e| e.to_string())?;
    match cmd {
        BlockCmd::Read { lun, lba, sectors } => {
            let vol = VolumeId(lun);
            mask.check_access(initiator, vol).map_err(|v| v.to_string())?;
            let c = cluster
                .read(now, 0, vol, lba * block::SECTOR, sectors as u64 * block::SECTOR)
                .map_err(|e| e.to_string())?;
            Ok(c.done)
        }
        BlockCmd::Write { lun, lba, sectors } => {
            let vol = VolumeId(lun);
            mask.check_access(initiator, vol).map_err(|v| v.to_string())?;
            let c = cluster
                .write(now, 0, vol, lba * block::SECTOR, sectors as u64 * block::SECTOR, 2, Retention::Normal)
                .map_err(|e| e.to_string())?;
            Ok(c.done)
        }
        BlockCmd::Unmap { lun, lba, sectors } => {
            let vol = VolumeId(lun);
            mask.check_access(initiator, vol).map_err(|v| v.to_string())?;
            let eb = cluster.config().extent_bytes;
            let first = lba * block::SECTOR / eb;
            let count = (sectors as u64 * block::SECTOR).div_ceil(eb);
            cluster.unmap_volume(vol, first, count).map_err(|e| e.to_string())?;
            Ok(now)
        }
        BlockCmd::ReportLuns | BlockCmd::Inquiry => Ok(now),
    }
}

#[test]
fn block_protocol_round_trips_through_the_pool() {
    let mut cluster = BladeCluster::new(ClusterConfig::default().with_blades(4).with_disks(8));
    let vol = cluster.create_volume("lun0", 1, GB).unwrap();
    let mut mask = LunMask::new();
    let host = InitiatorId(1);
    mask.grant(host, vol);

    let mut t = SimTime::ZERO;
    // WRITE 128 sectors at LBA 0, then READ them back, all via wire frames.
    let w = block::encode(&BlockCmd::Write { lun: 0, lba: 0, sectors: 128 });
    t = dispatch_block(&mut cluster, &mask, host, t, w).unwrap();
    let r = block::encode(&BlockCmd::Read { lun: 0, lba: 0, sectors: 128 });
    t = dispatch_block(&mut cluster, &mask, host, t, r).unwrap();
    assert!(cluster.stats.reads_from_local_cache + cluster.stats.reads_from_remote_cache >= 1);

    // UNMAP returns the space.
    let used = cluster.pool_used_extents();
    assert!(used >= 1);
    let u = block::encode(&BlockCmd::Unmap { lun: 0, lba: 0, sectors: 2048 });
    dispatch_block(&mut cluster, &mask, host, t, u).unwrap();
    assert!(cluster.pool_used_extents() < used);
}

#[test]
fn lun_masking_blocks_foreign_initiators_at_the_protocol_layer() {
    let mut cluster = BladeCluster::new(ClusterConfig::default().with_blades(2).with_disks(8));
    let vol = cluster.create_volume("secret", 1, GB).unwrap();
    let mut mask = LunMask::new();
    mask.grant(InitiatorId(1), vol);
    let intruder = InitiatorId(66);
    let frame = block::encode(&BlockCmd::Read { lun: 0, lba: 0, sectors: 8 });
    let err = dispatch_block(&mut cluster, &mask, intruder, SimTime::ZERO, frame).unwrap_err();
    assert!(err.contains("denied"), "intruder read must be denied: {err}");
    // The denied command moved no data.
    assert_eq!(cluster.stats.read_meter.ops(), 0);
}

#[test]
fn file_protocol_drives_the_namespace() {
    let mut fs = FileSystem::new(vec![VolumeId(0)], 1 << 20);
    let ops = vec![
        FileOp::Mkdir { path: "/exp".into() },
        FileOp::Create { path: "/exp/run1.dat".into() },
        FileOp::SetPolicy { path: "/exp/run1.dat".into(), preset: "critical".into() },
        FileOp::Write { ino: 0, offset: 0, len: 0 }, // placeholder; real write below
        FileOp::Rename { from: "/exp/run1.dat".into(), to: "/exp/run-final.dat".into() },
    ];
    for op in ops {
        // Decode from the wire, then apply.
        let decoded = file::decode(file::encode(&op)).unwrap();
        match decoded {
            FileOp::Mkdir { path } => {
                fs.mkdir(&path, None).unwrap();
            }
            FileOp::Create { path } => {
                fs.create(&path, None).unwrap();
            }
            FileOp::SetPolicy { path, preset } => {
                let pol = match preset.as_str() {
                    "critical" => FilePolicy::critical(),
                    "scratch" => FilePolicy::scratch(),
                    _ => FilePolicy::default(),
                };
                fs.set_policy(&path, pol).unwrap();
            }
            FileOp::Write { .. } => { /* data-path op exercised elsewhere */ }
            FileOp::Rename { from, to } => {
                fs.rename(&from, &to).unwrap();
            }
            _ => unreachable!(),
        }
    }
    let st = fs.stat("/exp/run-final.dat").unwrap();
    assert_eq!(st.policy, FilePolicy::critical());
    // Write through the namespace and confirm striping happened.
    let ino = fs.lookup("/exp/run-final.dat").unwrap();
    let extents = fs.write(ino, 0, 4 << 20).unwrap();
    assert!(!extents.is_empty());
}

#[test]
fn stream_plans_cover_every_protocol_and_range() {
    for proto in [
        ys_proto::StreamProtocol::Http,
        ys_proto::StreamProtocol::Ftp,
        ys_proto::StreamProtocol::Rtsp,
        ys_proto::StreamProtocol::Dicom,
    ] {
        let req = ys_proto::StreamRequest { protocol: proto, path: "/x".into(), range: Some((100 * KB, 500 * KB)) };
        let rt = ys_proto::stream::decode(ys_proto::stream::encode(&req)).unwrap();
        assert_eq!(rt, req);
        let plan = plan_stream(GB, req.range, 64 * KB, 4);
        let total: u64 = plan.segments.iter().map(|s| s.len).sum();
        assert_eq!(total, 500 * KB);
    }
}

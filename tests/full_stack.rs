//! End-to-end single-site integration: the full data path from client I/O
//! through cache coherence, virtualization, RAID, and disks — including
//! failure injection mid-workload.

use ys_cache::Retention;
use ys_core::{BladeCluster, ClusterConfig, Rebuilder};
use ys_proto::Workload;
use ys_simcore::time::{SimDuration, SimTime};
use ys_simdisk::DiskId;

const KB: u64 = 1 << 10;
const MB: u64 = 1 << 20;
const GB: u64 = 1 << 30;

fn cluster() -> BladeCluster {
    BladeCluster::new(ClusterConfig::default().with_blades(6).with_disks(12).with_clients(4))
}

#[test]
fn mixed_workload_survives_blade_failure_without_data_loss() {
    let mut c = cluster();
    let vol = c.create_volume("data", 0, 4 * GB).unwrap();
    let mut wl = Workload::random(256 * MB, 64 * KB, 0.5, 11);
    let mut t = SimTime::ZERO;
    for i in 0..400 {
        let op = wl.next_op();
        t = if op.write {
            c.write(t, i % 4, vol, op.offset, op.len, 2, Retention::Normal).unwrap().done
        } else {
            c.read(t, i % 4, vol, op.offset, op.len).unwrap().done
        };
        // Kill blades 0 and then 3 mid-stream.
        if i == 150 {
            let r = c.fail_blade(t, 0);
            assert!(r.lost.is_empty(), "2-way replication covers a single blade loss");
        }
        if i == 300 {
            // Blade 0 already dead; its replicas were promoted. Another
            // independent failure may catch pages whose replica chain was
            // [0, 3]; stats track it either way.
            c.fail_blade(t, 3);
        }
    }
    // The cluster kept serving: all 400 ops completed.
    assert_eq!(c.stats.read_meter.ops() + c.stats.write_meter.ops(), 400);
    // First failure must lose nothing.
    assert_eq!(c.stats.dirty_pages_lost, 0, "replication factor was never exceeded by concurrent failures");
}

#[test]
fn cache_pressure_forces_destage_but_never_corrupts() {
    // Tiny cache: writes quickly saturate it with dirty pages and force
    // destage-backpressure paths.
    let cfg = ClusterConfig::default().with_blades(2).with_disks(8).with_cache_pages(16);
    let mut c = BladeCluster::new(cfg);
    let vol = c.create_volume("v", 0, GB).unwrap();
    let mut t = SimTime::ZERO;
    for i in 0..200u64 {
        let w = c.write(t, 0, vol, i * 64 * KB, 64 * KB, 2, Retention::Normal).unwrap();
        t = w.done;
    }
    c.cache.check_invariants().unwrap();
    let end = c.drain();
    assert!(end >= t);
    c.cache.check_invariants().unwrap();
    // Everything that was written is physically allocated.
    assert_eq!(c.pool_used_extents(), (200 * 64 * KB).div_ceil(1 << 20));
}

#[test]
fn degraded_operation_then_rebuild_then_clean_reads() {
    let mut c = cluster();
    let vol = c.create_volume("v", 0, GB).unwrap();
    let mut t = SimTime::ZERO;
    for i in 0..64u64 {
        t = c.write(t, 0, vol, i * MB, MB, 2, Retention::Normal).unwrap().done;
    }
    t = c.drain().max(t);

    // Disk dies: reads continue degraded.
    c.fail_disk(DiskId(5));
    let degraded = c.read(t, 0, vol, 0, MB).unwrap();
    t = degraded.done;

    // Distributed rebuild brings it back.
    let mut r = Rebuilder::new(&mut c, t, DiskId(5), 64 * MB, &[0, 1, 2], 64);
    let finished = r.run(&mut c).unwrap();
    assert!(r.is_done());
    assert!(!c.failed_disks()[5]);

    // Clean read afterwards (cold cache path exercises RAID normally).
    for b in 0..6 {
        c.fail_blade(finished, b);
    }
    for b in 0..6 {
        c.repair_blade(b);
    }
    let clean = c.read(finished, 0, vol, 0, MB).unwrap();
    assert!(clean.latency > SimDuration::ZERO);
}

#[test]
fn thin_provisioning_and_unmap_round_trip_through_the_stack() {
    let mut c = cluster();
    let vol = c.create_volume("thin", 7, 100 * GB).unwrap();
    assert_eq!(c.pool_used_extents(), 0);
    let mut t = SimTime::ZERO;
    for i in 0..32u64 {
        t = c.write(t, 0, vol, i * MB, MB, 1, Retention::Normal).unwrap().done;
    }
    assert_eq!(c.pool_used_extents(), 32);
    let freed = c.unmap_volume(vol, 0, 16).unwrap();
    assert_eq!(freed, 16);
    assert_eq!(c.pool_used_extents(), 16);
    // Charge-back agrees.
    let bill = c.chargeback();
    assert_eq!(bill[0].actual_bytes, 16 << 20);
}

#[test]
fn retention_policy_protects_pinned_files_from_eviction() {
    // A small cache, one Pinned page set (§4's strongest retention
    // override) and a flood of Low-retention traffic: the pinned pages
    // survive; an un-pinned control set of the same age does not.
    let cfg = ClusterConfig::default().with_blades(1).with_disks(8).with_cache_pages(32);
    let mut c = BladeCluster::new(cfg);
    let vol = c.create_volume("v", 0, GB).unwrap();
    let mut t = SimTime::ZERO;
    // 8 hot pages, pinned; 8 control pages, normal retention.
    for i in 0..8u64 {
        t = c.write(t, 0, vol, i * 64 * KB, 64 * KB, 1, Retention::Pinned).unwrap().done;
    }
    for i in 32..40u64 {
        t = c.write(t, 0, vol, i * 64 * KB, 64 * KB, 1, Retention::Normal).unwrap().done;
    }
    t = c.drain().max(t);
    // Flood with 64 low-retention pages.
    for i in 100..164u64 {
        t = c.write(t, 0, vol, i * 64 * KB, 64 * KB, 1, Retention::Low).unwrap().done;
    }
    t = c.drain().max(t);
    // The pinned pages must still be cache hits.
    let before = c.stats.reads_from_disk;
    for i in 0..8u64 {
        t = c.read(t, 0, vol, i * 64 * KB, 64 * KB).unwrap().done;
    }
    assert_eq!(c.stats.reads_from_disk, before, "pinned pages were evicted");
    // The normal-retention control pages were (at least partly) displaced.
    for i in 32..40u64 {
        t = c.read(t, 0, vol, i * 64 * KB, 64 * KB).unwrap().done;
    }
    assert!(c.stats.reads_from_disk > before, "flood should displace unpinned pages");
}

#[test]
fn deterministic_replay_same_seed_same_results() {
    let run = || {
        let mut c = cluster();
        let vol = c.create_volume("v", 0, GB).unwrap();
        let mut wl = Workload::zipf(128 * MB, 64 * KB, 0.9, 0.3, 77);
        let mut t = SimTime::ZERO;
        for i in 0..300 {
            let op = wl.next_op();
            t = if op.write {
                c.write(t, i % 4, vol, op.offset, op.len, 2, Retention::Normal).unwrap().done
            } else {
                c.read(t, i % 4, vol, op.offset, op.len).unwrap().done
            };
        }
        (t, c.stats.read_latency.p99(), c.stats.reads_from_disk, c.pool_used_extents())
    };
    assert_eq!(run(), run(), "simulation must be a pure function of (config, seed)");
}

#[test]
fn rolling_upgrade_never_stops_service() {
    // §6.3: "Upgrades could be applied incrementally across the system
    // removing the need for planned down time." Take each blade down in
    // turn (upgrade), while a mixed workload keeps running; nothing is
    // lost and every op completes.
    let mut c = cluster();
    let vol = c.create_volume("v", 0, 4 * GB).unwrap();
    let mut wl = Workload::random(128 * MB, 64 * KB, 0.5, 23);
    let mut t = SimTime::ZERO;
    let blades = 6;
    let ops_per_phase = 40;
    for upgrade_target in 0..blades {
        // Take the blade down for its "upgrade".
        let report = c.fail_blade(t, upgrade_target);
        assert!(report.lost.is_empty(), "draining a blade must not lose data (2-way replication)");
        for i in 0..ops_per_phase {
            let op = wl.next_op();
            t = if op.write {
                c.write(t, i % 4, vol, op.offset, op.len, 2, Retention::Normal).unwrap().done
            } else {
                c.read(t, i % 4, vol, op.offset, op.len).unwrap().done
            };
        }
        // Upgrade finished; blade rejoins empty.
        c.repair_blade(upgrade_target);
        c.cache.check_invariants().unwrap();
    }
    assert_eq!(c.stats.dirty_pages_lost, 0, "a rolling upgrade is loss-free");
    assert_eq!(
        c.stats.read_meter.ops() + c.stats.write_meter.ops(),
        (blades * ops_per_phase) as u64,
        "service never paused"
    );
}

#[test]
fn snapshot_isolation_survives_live_writes() {
    // §7.2: "The copy could then be accessed as an alternate virtual disk."
    let mut c = cluster();
    let vol = c.create_volume("db", 0, GB).unwrap();
    let mut t = SimTime::ZERO;
    for i in 0..16u64 {
        t = c.write(t, 0, vol, i * MB, MB, 1, Retention::Normal).unwrap().done;
    }
    let used_before = c.pool_used_extents();
    let snap = c.snapshot_volume(vol).unwrap();
    assert_eq!(c.pool_used_extents(), used_before, "snapshot is zero-copy");
    // Live writes diverge (redirect-on-write allocates new extents).
    for i in 0..8u64 {
        t = c.write(t, 0, vol, i * MB, MB, 1, Retention::Normal).unwrap().done;
    }
    assert_eq!(c.pool_used_extents(), used_before + 8, "8 extents redirected");
    // Dropping the snapshot reclaims the frozen-only extents.
    let freed = c.delete_snapshot(vol, snap).unwrap();
    assert_eq!(freed, 8);
    assert_eq!(c.pool_used_extents(), used_before);
    let _ = t;
}

#[test]
fn live_volume_migration_is_host_transparent() {
    // §3: a virtual volume can be "moved ... independent of the storage
    // subsystems on which it resides". Relocate data under a live volume;
    // reads keep working and accounting is unchanged.
    let mut c = cluster();
    let vol = c.create_volume("hot", 0, GB).unwrap();
    let mut t = SimTime::ZERO;
    for i in 0..16u64 {
        t = c.write(t, 0, vol, i * MB, MB, 1, Retention::Normal).unwrap().done;
    }
    t = c.drain().max(t);
    let used_before = c.pool_used_extents();
    let (moved, done) = c.migrate_volume_data(t, 0, vol, 0, 16).unwrap();
    assert_eq!(moved, 16);
    assert!(done > t, "copies take time");
    assert_eq!(c.pool_used_extents(), used_before, "no extent leak");
    // The host keeps reading the same virtual addresses.
    let r = c.read(done, 0, vol, 0, MB).unwrap();
    assert!(r.latency > SimDuration::ZERO);
}

#[test]
fn rollback_gives_instant_recovery_from_corruption() {
    // The §7.2 snapshot as "an alternate virtual disk", plus the [1]
    // SnapRestore-style instant recovery: after a bad batch of writes, the
    // volume rolls back to the snapshot and reads stop seeing the
    // corrupted mapping.
    let mut c = cluster();
    let vol = c.create_volume("db", 0, GB).unwrap();
    let mut t = SimTime::ZERO;
    for i in 0..12u64 {
        t = c.write(t, 0, vol, i * MB, MB, 2, Retention::Normal).unwrap().done;
    }
    t = c.drain().max(t);
    let snap = c.snapshot_volume(vol).unwrap();
    let used_at_snap = c.pool_used_extents();
    // "Corruption": a runaway job rewrites and extends the volume.
    for i in 0..20u64 {
        t = c.write(t, 0, vol, i * MB, MB, 2, Retention::Normal).unwrap().done;
    }
    t = c.drain().max(t);
    assert!(c.pool_used_extents() > used_at_snap);
    let freed = c.rollback_volume(vol, snap).unwrap();
    assert!(freed >= 12, "diverged extents reclaimed, freed {freed}");
    assert_eq!(c.pool_used_extents(), used_at_snap);
    // The volume still serves reads (from the restored mapping, cold cache).
    let r = c.read(t, 0, vol, 0, MB).unwrap();
    assert!(r.latency > SimDuration::ZERO);
    c.cache.check_invariants().unwrap();
}

//! §4's per-file RAID override, end to end: a cluster exposing several
//! RAID groups, files whose policies route their extents to the matching
//! class, and the performance/availability consequences.

use ys_cache::Retention;
use ys_core::{BladeCluster, ClusterConfig, NetStorage, NetStorageConfig};
use ys_geo::SiteId;
use ys_pfs::FilePolicy;
use ys_raid::RaidLevel;
use ys_simcore::time::SimTime;
use ys_simdisk::DiskId;

const KB: u64 = 1 << 10;
const MB: u64 = 1 << 20;
const GB: u64 = 1 << 30;

fn tiered_cluster_cfg() -> ClusterConfig {
    // Group 0: RAID-5 capacity over 8 disks; group 1: RAID-1 mirrors over
    // 4 disks; group 2: RAID-0 scratch over 4 disks.
    ClusterConfig::default()
        .with_blades(4)
        .with_disks(8)
        .with_clients(4)
        .with_extra_group(RaidLevel::Raid1 { copies: 2 }, 4, 64 * KB)
        .with_extra_group(RaidLevel::Raid0, 4, 64 * KB)
}

#[test]
fn groups_partition_the_farm() {
    let c = BladeCluster::new(tiered_cluster_cfg());
    assert_eq!(c.group_count(), 3);
    assert_eq!(c.farm.len(), 16, "8 + 4 + 4 disks");
    assert_eq!(c.group(0).geo.level, RaidLevel::Raid5);
    assert_eq!(c.group(1).geo.level, RaidLevel::Raid1 { copies: 2 });
    assert_eq!(c.group(2).geo.level, RaidLevel::Raid0);
    assert_eq!(c.group_of_disk(DiskId(3)), (0, 3));
    assert_eq!(c.group_of_disk(DiskId(9)), (1, 1));
    assert_eq!(c.group_of_disk(DiskId(14)), (2, 2));
    assert_eq!(c.group_for_level(RaidLevel::Raid0), Some(2));
    assert_eq!(c.group_for_level(RaidLevel::Raid6), None);
}

#[test]
fn volumes_in_different_groups_use_their_own_disks() {
    let mut c = BladeCluster::new(tiered_cluster_cfg());
    let v_r5 = c.create_volume_in(0, "cap", 0, GB).unwrap();
    let v_r0 = c.create_volume_in(2, "scratch", 0, GB).unwrap();
    let mut t = SimTime::ZERO;
    for i in 0..16u64 {
        t = c.write(t, 0, v_r5, i * MB, MB, 1, Retention::Normal).unwrap().done;
        t = c.write(t, 0, v_r0, i * MB, MB, 1, Retention::Normal).unwrap().done;
    }
    c.drain();
    // RAID5 traffic lands on disks 0..8; RAID0 on 12..16; mirrors idle.
    let writes = |range: std::ops::Range<usize>| -> u64 {
        range.map(|i| c.farm.disk(DiskId(i)).writes()).sum()
    };
    assert!(writes(0..8) > 0, "capacity group served the RAID5 volume");
    assert!(writes(12..16) > 0, "scratch group served the RAID0 volume");
    assert_eq!(writes(8..12), 0, "mirror group untouched");
}

#[test]
fn raid0_group_dies_with_one_disk_raid1_survives() {
    let mut c = BladeCluster::new(tiered_cluster_cfg());
    let v_r1 = c.create_volume_in(1, "mirror", 0, GB).unwrap();
    let v_r0 = c.create_volume_in(2, "scratch", 0, GB).unwrap();
    let mut t = SimTime::ZERO;
    t = c.write(t, 0, v_r1, 0, MB, 1, Retention::Normal).unwrap().done;
    t = c.write(t, 0, v_r0, 0, MB, 1, Retention::Normal).unwrap().done;
    t = c.drain().max(t);
    // Cold caches.
    for b in 0..4 {
        c.fail_blade(t, b);
        c.repair_blade(b);
    }
    // Kill one disk in each group.
    c.fail_disk(DiskId(8)); // mirror member
    c.fail_disk(DiskId(12)); // scratch member
    assert!(c.read(t, 0, v_r1, 0, MB).is_ok(), "mirror survives a member loss");
    assert!(c.read(t, 0, v_r0, 0, MB).is_err(), "RAID0 scratch does not");
}

#[test]
fn per_file_policy_routes_extents_to_the_matching_class() {
    let mut ns = NetStorage::new(NetStorageConfig {
        site_cluster: tiered_cluster_cfg(),
        ..NetStorageConfig::default()
    });
    let s0 = SiteId(0);
    // Default file → class 0 (RAID5 group); scratch policy → RAID0 group.
    ns.create_file("/normal.dat", FilePolicy::default(), s0).unwrap();
    ns.create_file("/scratch.tmp", FilePolicy::scratch(), s0).unwrap();
    let mirror_pol =
        FilePolicy { raid: Some(RaidLevel::Raid1 { copies: 2 }), ..FilePolicy::default() };
    ns.create_file("/hot.db", mirror_pol, s0).unwrap();

    let mut t = SimTime::ZERO;
    t = ns.write_file(t, s0, 0, "/normal.dat", 0, 4 * MB).unwrap().done;
    t = ns.write_file(t, s0, 0, "/scratch.tmp", 0, 4 * MB).unwrap().done;
    let _ = ns.write_file(t, s0, 0, "/hot.db", 0, 4 * MB).unwrap();

    // Each file's extents name a volume in the right group (group id is
    // encoded in the top byte of the VolumeId).
    let group_of = |ns: &NetStorage, path: &str| -> u32 {
        let ino = ns.fs.lookup(path).unwrap();
        let ext = ns.fs.read(ino, 0, 4 * MB).unwrap();
        assert!(!ext.is_empty());
        ext[0].vol.0 >> 24
    };
    assert_eq!(group_of(&ns, "/normal.dat"), 0, "default class on the RAID5 group");
    assert_eq!(group_of(&ns, "/hot.db"), 1, "mirror class on the RAID1 group");
    assert_eq!(group_of(&ns, "/scratch.tmp"), 2, "scratch class on the RAID0 group");

    // And the physical traffic went to each group's own disks.
    let cluster = &ns.clusters[0];
    assert!(cluster.group(0).volumes.pool().used_extents() > 0);
    assert!(cluster.group(1).volumes.pool().used_extents() > 0);
    assert!(cluster.group(2).volumes.pool().used_extents() > 0);
}

#[test]
fn unknown_raid_override_falls_back_to_default_class() {
    let mut ns = NetStorage::new(NetStorageConfig {
        site_cluster: tiered_cluster_cfg(),
        ..NetStorageConfig::default()
    });
    // No RAID6 group is configured in this cluster.
    let pol = FilePolicy { raid: Some(RaidLevel::Raid6), ..FilePolicy::default() };
    ns.create_file("/wants-r6.dat", pol, SiteId(0)).unwrap();
    ns.write_file(SimTime::ZERO, SiteId(0), 0, "/wants-r6.dat", 0, MB).unwrap();
    let ino = ns.fs.lookup("/wants-r6.dat").unwrap();
    let ext = ns.fs.read(ino, 0, MB).unwrap();
    assert_eq!(ext[0].vol.0 >> 24, 0, "graceful fallback to the default class");
}

//! Multi-site integration: the geographically distributed single data
//! image of §7 — policies, migration, replication shipping, failover.

use ys_core::{ClusterConfig, NetError, NetStorage, NetStorageConfig};
use ys_geo::{SiteId, SiteTopology};
use ys_pfs::{FilePolicy, GeoMode, GeoPolicy};
use ys_simcore::time::SimTime;
use ys_simnet::catalog;

const MB: u64 = 1 << 20;
const S0: SiteId = SiteId(0);
const S1: SiteId = SiteId(1);
const S2: SiteId = SiteId(2);

fn net() -> NetStorage {
    NetStorage::new(NetStorageConfig {
        site_cluster: ClusterConfig::default().with_blades(2).with_disks(6).with_clients(2),
        ..NetStorageConfig::default()
    })
}

#[test]
fn single_namespace_spans_sites() {
    let mut ns = net();
    ns.fs.mkdir("/projects", None).unwrap();
    ns.create_file("/projects/alpha", FilePolicy::default(), S0).unwrap();
    ns.create_file("/projects/beta", FilePolicy::default(), S1).unwrap();
    // Any site sees the same namespace.
    assert_eq!(ns.fs.readdir("/projects").unwrap(), vec!["alpha", "beta"]);
    // Data lives where it was created.
    let alpha = ns.fs.lookup("/projects/alpha").unwrap();
    let beta = ns.fs.lookup("/projects/beta").unwrap();
    assert_eq!(ns.residency(alpha), vec![S0]);
    assert_eq!(ns.residency(beta), vec![S1]);
}

#[test]
fn policy_change_takes_effect_on_next_write() {
    let mut ns = net();
    let p = FilePolicy { geo: GeoPolicy::none(), ..FilePolicy::default() };
    ns.create_file("/f", p, S0).unwrap();
    let w1 = ns.write_file(SimTime::ZERO, S0, 0, "/f", 0, MB).unwrap();
    assert_eq!(ns.stats.sync_replica_writes, 0);
    // Upgrade the file to synchronous replication "at any time" (§7.2).
    let p2 = FilePolicy { geo: GeoPolicy::sync(2), ..FilePolicy::default() };
    ns.fs.set_policy("/f", p2).unwrap();
    let w2 = ns.write_file(w1.done, S0, 0, "/f", 0, MB).unwrap();
    assert_eq!(ns.stats.sync_replica_writes, 1);
    assert!(w2.latency >= w1.latency, "sync replica costs at least the local path");
}

#[test]
fn write_ordering_is_preserved_by_async_shipping() {
    let mut ns = net();
    let p = FilePolicy { geo: GeoPolicy::async_(2), ..FilePolicy::default() };
    ns.create_file("/log", p, S0).unwrap();
    let mut t = SimTime::ZERO;
    for i in 0..30u64 {
        t = ns.write_file(t, S0, 0, "/log", i * 4096, 4096).unwrap().done;
    }
    // Ship in three budget-limited rounds; ordering must hold (verified
    // internally by the journal's debug assertions), and everything lands.
    for _ in 0..3 {
        ns.ship_async(t, 10 * 4096).unwrap();
    }
    ns.ship_async(t, u64::MAX).unwrap();
    assert_eq!(ns.async_backlog(S0, S1).0, 0);
    assert_eq!(ns.stats.async_writes_shipped, 30);
}

#[test]
fn migration_then_writer_invalidation_then_remigration() {
    let mut ns = net();
    ns.create_file("/shared", FilePolicy::default(), S0).unwrap();
    let ino = ns.fs.lookup("/shared").unwrap();
    let mut t = ns.write_file(SimTime::ZERO, S0, 0, "/shared", 0, 2 * MB).unwrap().done;
    // S2 reads: copy migrates.
    t = ns.read_file(t, S2, 0, "/shared", 0, 2 * MB).unwrap().done;
    assert!(ns.residency(ino).contains(&S2));
    // S0 writes: S2's copy is stale and dropped.
    t = ns.write_file(t, S0, 0, "/shared", 0, 2 * MB).unwrap().done;
    assert_eq!(ns.residency(ino), vec![S0]);
    // S2 reads again: pays migration again (no free staleness).
    let before = ns.stats.migrations;
    ns.read_file(t, S2, 0, "/shared", 0, 2 * MB).unwrap();
    assert_eq!(ns.stats.migrations, before + 1);
}

#[test]
fn preferred_site_policy_is_honoured() {
    let mut ns = net();
    let p = FilePolicy {
        geo: GeoPolicy {
            mode: GeoMode::Synchronous,
            site_copies: 2,
            min_distance_km: 0.0,
            preferred_sites: vec![2], // pin the replica to the continental site
        },
        ..FilePolicy::default()
    };
    ns.create_file("/pinned", p, S0).unwrap();
    let w = ns.write_file(SimTime::ZERO, S0, 0, "/pinned", 0, MB).unwrap();
    let ino = ns.fs.lookup("/pinned").unwrap();
    assert!(ns.residency(ino).contains(&S2), "replica pinned to site 2");
    assert!(w.latency.as_millis_f64() > 9.0, "paid the continental RTT: {}", w.latency);
}

#[test]
fn double_site_failure_with_three_copies_still_serves() {
    let mut ns = net();
    let p = FilePolicy { geo: GeoPolicy::sync(3), ..FilePolicy::default() };
    ns.create_file("/vital", p, S0).unwrap();
    let mut t = ns.write_file(SimTime::ZERO, S0, 0, "/vital", 0, MB).unwrap().done;
    // With a sync(3) policy the nearest replica is sync; the far one async.
    t = ns.ship_async(t, u64::MAX).unwrap();
    ns.fail_site(S0);
    ns.fail_site(S1);
    let r = ns.read_file(t, S2, 0, "/vital", 0, MB);
    assert!(r.is_ok(), "third copy at the continental site survives: {:?}", r.err().map(|e| e.to_string()));
}

#[test]
fn reads_at_failed_site_are_rejected_cleanly() {
    let mut ns = net();
    ns.create_file("/f", FilePolicy::default(), S0).unwrap();
    ns.write_file(SimTime::ZERO, S0, 0, "/f", 0, MB).unwrap();
    ns.fail_site(S1);
    assert!(matches!(ns.read_file(SimTime(1), S1, 0, "/f", 0, MB), Err(NetError::SiteDown(_))));
    // Repair restores service.
    ns.repair_site(S1);
    assert!(ns.read_file(SimTime(2), S1, 0, "/f", 0, MB).is_ok());
}

#[test]
fn wan_distance_shapes_first_reference_latency() {
    // Two topologies differing only in distance: the farther one pays more
    // for its first remote reference.
    let run = |km: f64| {
        let mut topo = SiteTopology::new(&["a", "b"]);
        topo.connect(SiteId(0), SiteId(1), catalog::oc192(), km);
        let mut ns = NetStorage::new(NetStorageConfig {
            site_cluster: ClusterConfig::default().with_blades(2).with_disks(6).with_clients(2),
            topology: topo,
            ..NetStorageConfig::default()
        });
        ns.create_file("/d", FilePolicy::default(), SiteId(0)).unwrap();
        let t = ns.write_file(SimTime::ZERO, SiteId(0), 0, "/d", 0, 4 * MB).unwrap().done;
        ns.read_file(t, SiteId(1), 0, "/d", 0, 4 * MB).unwrap().latency
    };
    let near = run(50.0);
    let far = run(5000.0);
    assert!(far > near, "distance must cost: near {near}, far {far}");
    // The bulk migration pays one-way light time: ~(5000−50) km × 5 µs/km.
    assert!((far.as_millis_f64() - near.as_millis_f64()) > 20.0, "≈25 ms of light time missing");
}

#[test]
fn single_system_image_report_covers_every_site() {
    let mut ns = net();
    ns.create_file("/f", FilePolicy::default(), S0).unwrap();
    let pol = FilePolicy { geo: GeoPolicy::async_(2), ..FilePolicy::default() };
    ns.create_file("/g", pol, S0).unwrap();
    let t = ns.write_file(SimTime::ZERO, S0, 0, "/g", 0, MB).unwrap().done;
    ns.clusters[1].fail_blade(t, 0);
    ns.fail_site(S2);

    let report = ns.system_report(t);
    assert_eq!(report.sites.len(), 3);
    assert_eq!(report.files, 2);
    assert!(report.sites[0].up && report.sites[1].up && !report.sites[2].up);
    assert_eq!(report.sites[1].blades_up, report.sites[1].blades_total - 1);
    assert!(report.sites[0].pool_used_bytes >= MB, "home site holds the data");
    assert!(report.sites[0].async_backlog_bytes > 0, "unshipped journal visible in the report");
    // Renders as one view for the distributed IT team (§7.3).
    let text = format!("{report}");
    assert!(text.contains("metro") && text.contains("continental") && text.contains("DOWN"));
}

//! Torture test: a long, mixed, failure-ridden run with the coherence and
//! allocation invariants checked throughout. This is the "never goes down,
//! never corrupts" claim of §6.3 exercised as one continuous life story.

use ys_cache::Retention;
use ys_core::{BladeCluster, ClusterConfig, Rebuilder};
use ys_proto::Workload;
use ys_simcore::time::SimTime;
use ys_simcore::Rng;
use ys_simdisk::DiskId;

const KB: u64 = 1 << 10;
const MB: u64 = 1 << 20;
const GB: u64 = 1 << 30;

#[test]
fn long_mixed_life_with_failures_rebuilds_and_snapshots() {
    let mut c = BladeCluster::new(
        ClusterConfig::default()
            .with_blades(6)
            .with_disks(12)
            .with_clients(6)
            .with_cache_pages(512)
            .with_prefetch(4),
    );
    let vol = c.create_volume("life", 0, 8 * GB).unwrap();
    let mut wl = Workload::zipf(512 * MB, 64 * KB, 0.95, 0.4, 0xBEEF);
    let mut rng = Rng::new(0xF00D);
    let mut t = SimTime::ZERO;
    let mut snapshots = Vec::new();
    let mut degraded_disk: Option<DiskId> = None;

    for i in 0..2500usize {
        let op = wl.next_op();
        t = if op.write {
            c.write(t, i % 6, vol, op.offset, op.len, 2, Retention::Normal).unwrap().done
        } else {
            c.read(t, i % 6, vol, op.offset, op.len).unwrap().done
        };

        match i {
            // Blade churn.
            300 => {
                let r = c.fail_blade(t, 1);
                assert!(r.lost.is_empty());
            }
            600 => c.repair_blade(1),
            // A disk dies; we keep running degraded for a while.
            900 => {
                let d = DiskId(rng.next_below(12) as usize);
                c.fail_disk(d);
                degraded_disk = Some(d);
            }
            // Rebuild it across three blades.
            1200 => {
                let d = degraded_disk.take().unwrap();
                let mut r = Rebuilder::new(&mut c, t, d, 64 * MB, &[2, 3, 4], 64);
                let done = r.run(&mut c).unwrap();
                assert!(r.is_done());
                t = t.max(done);
            }
            // Snapshots while hot.
            500 | 1500 => snapshots.push(c.snapshot_volume(vol).unwrap()),
            // Roll back to the newest snapshot mid-flight.
            1800 => {
                let snap = *snapshots.last().unwrap();
                c.rollback_volume(vol, snap).unwrap();
            }
            // Another blade bounce late in life.
            2100 => {
                let r = c.fail_blade(t, 5);
                assert!(r.lost.is_empty());
                c.repair_blade(5);
            }
            _ => {}
        }

        if i % 250 == 0 {
            c.cache.check_invariants().unwrap_or_else(|e| panic!("invariant broken at op {i}: {e}"));
        }
    }

    // Epilogue: everything drains, nothing was lost, accounting balances.
    c.drain();
    c.cache.check_invariants().unwrap();
    assert_eq!(c.stats.dirty_pages_lost, 0, "no dirty data lost in 2500 ops of chaos");
    assert_eq!(
        c.stats.read_meter.ops() + c.stats.write_meter.ops(),
        2500,
        "every op completed"
    );
    for snap in snapshots {
        c.delete_snapshot(vol, snap).unwrap();
    }
    // Pool usage equals exactly the volume's live mapping.
    let mapped = c.group(0).volumes.volume(ys_virt::VolumeId(0)).unwrap().mapped_extents();
    assert_eq!(c.pool_used_extents(), mapped, "no leaked extents after snapshot cleanup");
}

//! The paper's central comparisons, verified end-to-end: the blade-cluster
//! pool vs the traditional dual-controller array.

use ys_cache::Retention;
use ys_core::{BladeCluster, ClusterConfig, LegacyArray, LegacyConfig, LoadBalance};
use ys_proto::Workload;
use ys_simcore::time::SimTime;

const KB: u64 = 1 << 10;
const MB: u64 = 1 << 20;
const GB: u64 = 1 << 30;

/// Closed-loop helper: issue `ops` cache-warm reads and return MB/s.
fn cluster_throughput(blades: usize, ops: usize) -> f64 {
    let clients = 16;
    let mut c = BladeCluster::new(ClusterConfig::default().with_blades(blades).with_disks(16).with_clients(clients));
    let vol = c.create_volume("v", 0, 4 * GB).unwrap();
    let set = 64 * MB;
    let io = 64 * KB;
    let mut t = SimTime::ZERO;
    for off in (0..set).step_by(io as usize) {
        t = c.write(t, 0, vol, off, io, 1, Retention::Normal).unwrap().done;
    }
    let base = c.drain().max(t);
    let mut wl = Workload::random(set, io, 0.0, 5);
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize)>> =
        (0..clients).map(|cl| std::cmp::Reverse((base.nanos(), cl))).collect();
    let mut remaining = ops;
    let mut bytes = 0u64;
    let mut end = base;
    while let Some(std::cmp::Reverse((tn, cl))) = heap.pop() {
        if remaining == 0 {
            break;
        }
        remaining -= 1;
        let op = wl.next_op();
        let done = c.read(SimTime(tn), cl, vol, op.offset, op.len).unwrap().done;
        bytes += op.len;
        end = end.max(done);
        heap.push(std::cmp::Reverse((done.nanos(), cl)));
    }
    bytes as f64 / 1e6 / end.since(base).as_secs_f64()
}

#[test]
fn blade_scaling_beats_the_fixed_controller_ceiling() {
    let two = cluster_throughput(2, 2000);
    let eight = cluster_throughput(8, 2000);
    assert!(
        eight > two * 1.7,
        "8 blades ({eight:.0} MB/s) should far outrun 2 ({two:.0} MB/s) — the paper's §2.1"
    );
}

#[test]
fn pooled_cache_beats_partitioned_under_skew() {
    // Same hardware, same Zipf workload over 8 volumes; only the routing
    // policy differs: pooled page-affinity spreads the hot volume's pages
    // over every blade's cache, while volume pinning creates an island.
    let clients = 16usize;
    let run = |lb: LoadBalance| {
        let mut c = BladeCluster::new(
            ClusterConfig::default().with_blades(8).with_disks(16).with_clients(clients).with_load_balance(lb),
        );
        let vols: Vec<_> = (0..8).map(|i| c.create_volume(&format!("v{i}"), 0, GB).unwrap()).collect();
        let mut t = SimTime::ZERO;
        for &v in &vols {
            for off in (0..(16 * MB)).step_by((64 * KB) as usize) {
                t = c.write(t, 0, v, off, 64 * KB, 1, Retention::Normal).unwrap().done;
            }
        }
        let base = c.drain().max(t);
        let zipf = ys_simcore::Zipf::new(8, 1.2);
        let mut rng = ys_simcore::Rng::new(31);
        let mut wl = Workload::random(16 * MB, 64 * KB, 0.0, 17);
        // Closed loop with 8 concurrent clients: hot-spot queueing only
        // shows up when requests actually overlap in time.
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize)>> =
            (0..clients).map(|cl| std::cmp::Reverse((base.nanos(), cl))).collect();
        let mut remaining = 2000usize;
        let mut end = base;
        while let Some(std::cmp::Reverse((tn, cl))) = heap.pop() {
            if remaining == 0 {
                break;
            }
            remaining -= 1;
            let v = vols[zipf.sample(&mut rng)];
            let op = wl.next_op();
            let done = c.read(SimTime(tn), cl, v, op.offset, op.len).unwrap().done;
            end = end.max(done);
            heap.push(std::cmp::Reverse((done.nanos(), cl)));
        }
        (end.since(base), c.blade_utilizations(end))
    };
    let (pooled_time, pooled_utils) = run(LoadBalance::PageAffinity);
    let (pinned_time, pinned_utils) = run(LoadBalance::PinnedByVolume);
    assert!(pooled_time < pinned_time, "pooled {pooled_time} !< pinned {pinned_time}");
    let spread = |u: &[f64]| {
        let max = u.iter().cloned().fold(0.0, f64::max);
        let mean = u.iter().sum::<f64>() / u.len() as f64;
        max / mean.max(1e-12)
    };
    assert!(
        spread(&pinned_utils) > spread(&pooled_utils) * 1.3,
        "pinned routing must show the hot-spot: {:?} vs {:?}",
        pinned_utils,
        pooled_utils
    );
}

#[test]
fn nway_cluster_survives_where_dual_controller_loses() {
    // Cluster with 3-way replication: two blade failures, zero loss.
    let mut c = BladeCluster::new(ClusterConfig::default().with_blades(6).with_disks(12));
    let vol = c.create_volume("v", 0, GB).unwrap();
    let mut t = SimTime::ZERO;
    for i in 0..30u64 {
        t = c.write(t, 0, vol, i * 64 * KB, 64 * KB, 3, Retention::Normal).unwrap().done;
    }
    let r1 = c.fail_blade(t, 0);
    let r2 = c.fail_blade(t, 1);
    assert!(r1.lost.is_empty() && r2.lost.is_empty(), "3-way survives 2 failures");

    // Legacy array: the second controller failure loses dirty data.
    let mut a = LegacyArray::new(LegacyConfig::default());
    let mut t = SimTime::ZERO;
    for i in 0..30u64 {
        a.write(t, 0, i * 64 * KB, 64 * KB);
        t = SimTime(t.nanos() + 1_000_000);
    }
    assert_eq!(a.fail_controller(0), 0, "first failure covered by the mirror");
    assert!(a.fail_controller(1) > 0, "second failure loses data — the paper's §6.1 limit");
}

#[test]
fn dmsd_needs_a_fraction_of_fixed_provisioning() {
    use ys_virt::{PhysicalPool, VolumeKind, VolumeManager};
    // Fixed provisioning of 20 × 10 GiB volumes needs 200 GiB of disk; the
    // same volumes as DMSDs with 10% utilization need 20 GiB.
    let extent = MB;
    let mut thin = VolumeManager::new(PhysicalPool::new(256 * 1024, extent));
    for i in 0..20 {
        let id = thin.create(format!("t{i}"), i, VolumeKind::DemandMapped, 10 * 1024).unwrap();
        thin.write(id, 0, 1024).unwrap(); // 1 GiB of 10 used
    }
    let thin_used = thin.pool().used_extents();
    let mut fixed = VolumeManager::new(PhysicalPool::new(256 * 1024, extent));
    for i in 0..20 {
        fixed.create(format!("f{i}"), i, VolumeKind::Fixed, 10 * 1024).unwrap();
    }
    let fixed_used = fixed.pool().used_extents();
    assert_eq!(thin_used * 10, fixed_used, "10x provisioning efficiency at 10% utilization");
}

#!/usr/bin/env sh
# Repo hygiene gate: custom panic-lint plus clippy, both deny-by-default.
# The panic-lint covers cache, virt, simcore, and qos library code.
# Run from anywhere inside the repo; CI and pre-commit both call this.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo xtask lint"
cargo xtask lint

echo "==> cargo xtask doc (rustdoc, -D warnings)"
cargo xtask doc

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "==> clippy unavailable in this toolchain; skipping (xtask lint still ran)"
fi

echo "==> all checks passed"

#!/usr/bin/env sh
# Repo hygiene gate: ys-lint static analysis plus rustdoc and clippy, all
# deny-by-default, plus a deterministic ys-chaos fault-campaign smoke with
# a byte-identity replay diff as a tier-1 gate.
# Run from anywhere inside the repo; CI and pre-commit both call this.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo xtask lint (ys-lint: panic/wall-clock/entropy/iteration rules)"
cargo xtask lint

echo "==> cargo xtask doc (rustdoc, -D warnings)"
cargo xtask doc

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "==> clippy unavailable in this toolchain; skipping (xtask lint still ran)"
fi

echo "==> ys-chaos fault-campaign smoke + in-process double-run (seed 4, 64 steps)"
cargo run -q -p ys-chaos -- --seed 4 --steps 64 --double-run --quiet

# End-to-end integrity: a seeded latent-error campaign must detect every
# injected corruption and repair it (with the source attributed) or
# declare it lost explicitly — plus the in-process byte-identity replay.
echo "==> ys-scrub latent-error campaign + in-process double-run (seed 4, 64 errors)"
cargo run -q -p ys-scrub -- --seed 4 --errors 64 --double-run --quiet

# Blade lifecycle: the seeded drain/fail/heal/rejoin campaign must lose
# zero acknowledged writes through planned and unplanned membership churn,
# refuse writes exactly at ReadOnly health, and replay byte-identically.
echo "==> ys-heal lifecycle campaign + in-process double-run (seed 4)"
cargo run -q -p ys-heal -- --seed 4 --double-run --quiet

# Cross-process byte-identity: two separate invocations of the same seed
# must print identical transcripts. The in-process double-run above already
# catches per-instance hasher drift; this one also covers anything that
# varies per process (ASLR-dependent ordering, env, globals).
echo "==> ys-chaos cross-process determinism diff (seed 4, 64 steps)"
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
cargo run -q -p ys-chaos -- --seed 4 --steps 64 > "$tmpdir/run1.txt"
cargo run -q -p ys-chaos -- --seed 4 --steps 64 > "$tmpdir/run2.txt"
if ! cmp -s "$tmpdir/run1.txt" "$tmpdir/run2.txt"; then
    echo "FAIL: same-seed runs differ across processes — replay determinism broken" >&2
    diff "$tmpdir/run1.txt" "$tmpdir/run2.txt" >&2 || true
    exit 1
fi
echo "    transcripts byte-identical across processes"

# Parallelism must be a throughput knob, not a behaviour knob: the merged
# sweep report has to be byte-identical whether shards ran on one worker
# or four. (ys-sweep's own tests pin this too; this gate catches it at the
# shipped-binary level, after any cargo feature/profile skew.)
echo "==> ys-sweep parallel-vs-serial determinism smoke (chaos seeds 1..5)"
cargo run -q -p ys-sweep -- chaos --seeds 1..5 --steps 32 --jobs 1 > "$tmpdir/sweep1.txt"
cargo run -q -p ys-sweep -- chaos --seeds 1..5 --steps 32 --jobs 4 > "$tmpdir/sweep4.txt"
if ! cmp -s "$tmpdir/sweep1.txt" "$tmpdir/sweep4.txt"; then
    echo "FAIL: --jobs 4 sweep differs from --jobs 1 — shard merge broke determinism" >&2
    diff "$tmpdir/sweep1.txt" "$tmpdir/sweep4.txt" >&2 || true
    exit 1
fi
echo "    sweep reports byte-identical across --jobs 1/4"

# Security pillar: the §5 enforcement stack must hold end to end. The two
# checkpointed scenarios fail loudly (non-zero exit) if any cross-tenant
# frame succeeds, a denial goes unaudited, media bytes are plaintext, or
# hardware-assist crypt falls more than 5% off wire speed — and the model
# checker exhausts the mask/zone/cipher state space (saturates at depth 7).
echo "==> ys-report secure-tenants + wire-speed-crypt (E2/E11 checkpoints)"
cargo run -q -p ys-obs --bin ys-report -- secure-tenants > "$tmpdir/e2.txt"
cargo run -q -p ys-obs --bin ys-report -- wire-speed-crypt > "$tmpdir/e11.txt"
if grep -q "FAIL" "$tmpdir/e2.txt" "$tmpdir/e11.txt"; then
    echo "FAIL: a security scenario checkpoint failed" >&2
    grep "FAIL" "$tmpdir/e2.txt" "$tmpdir/e11.txt" >&2
    exit 1
fi
echo "    all E2/E11 checkpoints passed"

echo "==> ys-check --security --depth 7 (exhaustive §5 enforcement model)"
cargo run -q -p ys-check --release -- --security --depth 7

echo "==> ys-check --heal --depth 7 (exhaustive blade-lifecycle model)"
cargo run -q -p ys-check --release -- --heal --depth 7

# Perf-trajectory drift gate: regenerating the benchmark snapshot must
# reproduce BENCH_baseline.json exactly, ignoring host wall-clock lines.
echo "==> cargo xtask bench-snapshot --check (sim metrics vs BENCH_baseline.json)"
cargo xtask bench-snapshot --check

echo "==> all checks passed"

#!/usr/bin/env sh
# Repo hygiene gate: custom panic-lint plus clippy, both deny-by-default,
# plus a deterministic ys-chaos fault-campaign smoke as a tier-1 gate.
# The panic-lint covers cache, virt, simcore, qos, and chaos library code.
# Run from anywhere inside the repo; CI and pre-commit both call this.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo xtask lint"
cargo xtask lint

echo "==> cargo xtask doc (rustdoc, -D warnings)"
cargo xtask doc

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "==> clippy unavailable in this toolchain; skipping (xtask lint still ran)"
fi

echo "==> ys-chaos fault-campaign smoke (seed 4, 64 steps)"
cargo run -q -p ys-chaos -- --seed 4 --steps 64 --quiet

echo "==> all checks passed"

//! Offline shim for the subset of the `bytes` crate this workspace uses.
//!
//! `Bytes` is a cheaply cloneable, sliceable view over shared immutable
//! storage; `BytesMut` is a growable buffer that freezes into `Bytes`.
//! Multi-byte integer accessors are big-endian, matching the real crate.

use std::ops::Deref;
use std::sync::Arc;

#[derive(Clone, Debug)]
enum Storage {
    Static(&'static [u8]),
    Shared(Arc<Vec<u8>>),
}

impl Storage {
    fn as_slice(&self) -> &[u8] {
        match self {
            Storage::Static(s) => s,
            Storage::Shared(v) => v.as_slice(),
        }
    }
}

/// Cheaply cloneable immutable byte buffer.
#[derive(Clone, Debug)]
pub struct Bytes {
    storage: Storage,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes::from_static(&[])
    }

    pub fn from_static(slice: &'static [u8]) -> Bytes {
        Bytes { storage: Storage::Static(slice), start: 0, end: slice.len() }
    }

    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.storage.as_slice()[self.start..self.end]
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// A sub-view of `self`; shares storage with the parent.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Bytes { storage: self.storage.clone(), start: self.start + lo, end: self.start + hi }
    }

    /// Split off and return the first `at` bytes, advancing `self` past them.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of range");
        let head = Bytes { storage: self.storage.clone(), start: self.start, end: self.start + at };
        self.start += at;
        head
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes { storage: Storage::Shared(Arc::new(v)), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Bytes {
        b.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

/// Growable byte buffer; freezes into [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source. Big-endian accessors, as in the real
/// crate. Reading past the end panics, also matching the real crate.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    fn get_u16(&mut self) -> u16 {
        let mut buf = [0u8; 2];
        buf.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(buf)
    }

    fn get_u32(&mut self) -> u32 {
        let mut buf = [0u8; 4];
        buf.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(buf)
    }

    fn get_u64(&mut self) -> u64 {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(buf)
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

/// Write cursor. Big-endian writers, as in the real crate.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_integers() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(7);
        b.put_u16(0x1234);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(42);
        let mut frame = b.freeze();
        assert_eq!(frame.remaining(), 15);
        assert_eq!(frame.get_u8(), 7);
        assert_eq!(frame.get_u16(), 0x1234);
        assert_eq!(frame.get_u32(), 0xDEAD_BEEF);
        assert_eq!(frame.get_u64(), 42);
        assert_eq!(frame.remaining(), 0);
    }

    #[test]
    fn slice_and_split_share_storage() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        let mut m = b.clone();
        let head = m.split_to(2);
        assert_eq!(&head[..], &[0, 1]);
        assert_eq!(&m[..], &[2, 3, 4, 5]);
    }

    #[test]
    fn static_bytes() {
        let b = Bytes::from_static(&[9, 8, 7]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.to_vec(), vec![9, 8, 7]);
    }
}

//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! The build container has no network access and no vendored registry, so
//! the real crate cannot be fetched. This shim maps the API onto `std::sync`
//! primitives; poisoning is swallowed (parking_lot has no poisoning either,
//! so behaviour matches for panicking threads).

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// `parking_lot::Mutex`: non-poisoning mutex with guard-returning `lock`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }
}

/// `parking_lot::RwLock`: non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_lock_and_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5u32);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }
}

//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! The real crate cannot be fetched in this container (no network, empty
//! registry). This shim keeps the call-site API — `proptest!`, strategies,
//! `prop_assert*`, `ProptestConfig` — but generates cases with a fixed-seed
//! deterministic RNG and performs **no shrinking**: a failing case reports
//! the generated inputs via `Debug` in the panic message instead of a
//! minimized counterexample. Each test's RNG is seeded from its module path,
//! so failures are stable run-to-run.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Deterministic splitmix64 generator for case construction.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test's fully qualified name so every test gets a stable,
    /// distinct stream.
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h ^ 0x9E37_79B9_7F4A_7C15 }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// How a generated case ended other than success.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case was rejected by `prop_assume!`; it does not count.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(reason: impl std::fmt::Display) -> TestCaseError {
        TestCaseError::Fail(reason.to_string())
    }

    pub fn reject(reason: impl std::fmt::Display) -> TestCaseError {
        TestCaseError::Reject(reason.to_string())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "case rejected: {r}"),
        }
    }
}

/// Subset of proptest's run configuration: only the case count matters here.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// A value generator. Unlike real proptest there is no value *tree* (no
/// shrinking); `generate` yields the final value directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f, reason }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Type-erased strategy, used by `prop_oneof!`.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_filter` combinator: regenerates until the predicate passes (bounded
/// attempts, then panics — the shim cannot reject lazily like real proptest).
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter: predicate rejected 1000 consecutive values ({})", self.reason);
    }
}

/// Constant strategy.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (the `prop_oneof!` backend).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let pick = rng.below(self.arms.len() as u64) as usize;
        self.arms[pick].generate(rng)
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Uniform in [0, 1): enough for the workload-shaping parameters
        // the workspace draws.
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

macro_rules! arbitrary_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}

arbitrary_tuple!(A, B);
arbitrary_tuple!(A, B, C);
arbitrary_tuple!(A, B, C, D);
arbitrary_tuple!(A, B, C, D, E);

/// The `any::<T>()` strategy.
pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.below(span) as i64) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + unit * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident / $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A / 0, B / 1);
tuple_strategy!(A / 0, B / 1, C / 2);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);

/// String strategy from a restricted regex: a single character class with a
/// bounded repetition, e.g. `"[a-z/]{0,40}"`. This covers the patterns the
/// workspace's tests use; anything else panics loudly.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_simple_pattern(self)
            .unwrap_or_else(|| panic!("proptest shim: unsupported string pattern {self:?}"));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len).map(|_| alphabet[rng.below(alphabet.len() as u64) as usize]).collect()
    }
}

fn parse_simple_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class = &rest[..close];
    let mut alphabet = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            for c in lo..=hi {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    let reps = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match reps.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = reps.trim().parse().ok()?;
            (n, n)
        }
    };
    if max < min {
        return None;
    }
    Some((alphabet, min, max))
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub min: usize,
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: vectors of `element` with length in
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S>(S);

    /// `proptest::option::of`: `None` about a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// The test-defining macro. Matches real proptest's surface for the forms
/// used in this workspace: an optional `#![proptest_config(...)]` header and
/// one or more `fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($p:pat in $s:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            // The immediately-invoked closure gives `prop_assert!` an early
            // `return Err(...)` channel; it is not redundant.
            #[allow(clippy::redundant_closure_call)]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                let mut ran: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = cfg.cases.saturating_mul(16).max(64);
                while ran < cfg.cases && attempts < max_attempts {
                    attempts += 1;
                    let result: ::std::result::Result<(), $crate::TestCaseError> = {
                        $(let $p = $crate::Strategy::generate(&($s), &mut rng);)+
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })()
                    };
                    match result {
                        ::std::result::Result::Ok(()) => ran += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest {}: failed after {} passing cases: {}", stringify!($name), ran, msg);
                        }
                    }
                }
            }
        )*
    };
}

/// Assert inside a proptest body; failure aborts the case, not the process.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(lhs == rhs, "assertion failed: `{:?}` == `{:?}`", lhs, rhs);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(lhs == rhs, "assertion failed: `{:?}` == `{:?}`: {}", lhs, rhs, format!($($fmt)+));
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(lhs != rhs, "assertion failed: `{:?}` != `{:?}`", lhs, rhs);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(lhs != rhs, "assertion failed: `{:?}` != `{:?}`: {}", lhs, rhs, format!($($fmt)+));
    }};
}

/// Discard the current case without failing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate as proptest;
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Pick {
        A(u8),
        B,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u8..9, y in 10u64..=20, z in 0usize..5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((10..=20).contains(&y));
            prop_assert!(z < 5);
        }

        #[test]
        fn vec_lengths_respect_bounds(v in proptest::collection::vec(any::<u8>(), 1..7)) {
            prop_assert!(!v.is_empty() && v.len() < 7);
        }

        #[test]
        fn oneof_and_map_compose(p in prop_oneof![
            any::<u8>().prop_map(Pick::A),
            Just(Pick::B),
        ]) {
            match p {
                Pick::A(_) | Pick::B => {}
            }
        }

        #[test]
        fn string_patterns_generate_from_class(s in "[a-c/]{0,10}") {
            prop_assert!(s.len() <= 10);
            prop_assert!(s.chars().all(|c| matches!(c, 'a'..='c' | '/')));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn option_of_yields_both_variants(o in proptest::option::of(1u32..5)) {
            if let Some(v) = o {
                prop_assert!((1..5).contains(&v));
            }
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::for_test("x::y");
        let mut b = crate::TestRng::for_test("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_test("x::z");
        let _ = c.next_u64();
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failing_property_panics() {
        proptest! {
            #[allow(unused)]
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}

//! Offline shim for `serde`: a Value-tree data model instead of the real
//! crate's visitor architecture.
//!
//! The container cannot fetch the real `serde` (no network, empty registry),
//! and its derive macros would need a vendored proc-macro stack. This shim
//! keeps the two trait names the workspace imports but defines them against
//! an explicit JSON-like [`Value`]; types implement them by hand. The only
//! serde-consuming crate in the workspace is `ys-bench`, whose spec types
//! implement these traits directly.

use std::collections::BTreeMap;
use std::fmt;

/// JSON-shaped value tree. Object entries keep insertion order so output is
/// deterministic and round-trips byte-identically.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(Number),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

/// Exact numeric storage: integers round-trip without f64 precision loss.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    U(u64),
    I(i64),
    F(f64),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(Number::U(u)) => Some(*u),
            Value::Num(Number::I(i)) if *i >= 0 => Some(*i as u64),
            Value::Num(Number::F(f)) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(Number::U(u)) => Some(*u as f64),
            Value::Num(Number::I(i)) => Some(*i as f64),
            Value::Num(Number::F(f)) => Some(*f),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Deserialization failure: a path-less description of what went wrong.
#[derive(Clone, Debug, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    pub fn custom(msg: impl fmt::Display) -> DeError {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Shim counterpart of `serde::Serialize`: render self as a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Shim counterpart of `serde::Deserialize`: build self from a [`Value`].
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let u = v.as_u64().ok_or_else(|| DeError::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(u).map_err(|_| DeError::custom(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::custom("expected number"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str().map(str::to_owned).ok_or_else(|| DeError::custom("expected string"))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::custom("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<K: Ord + Clone + Into<String>, V: Serialize> Serialize for BTreeMap<K, V>
where
    K: AsRef<str>,
{
    fn to_value(&self) -> Value {
        Value::Obj(self.iter().map(|(k, v)| (k.as_ref().to_owned(), v.to_value())).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(String::from_value(&"hi".to_string().to_value()), Ok("hi".to_string()));
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()), Ok(v));
    }

    #[test]
    fn large_u64_is_exact() {
        let big = u64::MAX - 1;
        assert_eq!(u64::from_value(&big.to_value()), Ok(big));
    }

    #[test]
    fn type_mismatch_reports_error() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(bool::from_value(&Value::Null).is_err());
    }
}

//! Offline shim for the subset of `criterion` the workspace's benches use.
//!
//! The real crate cannot be fetched in this container. This shim keeps the
//! registration API (`criterion_group!`, `criterion_main!`, groups, ids,
//! throughput) but runs each benchmark body exactly **once** as a smoke test
//! and reports the single-shot wall time — no sampling, statistics, or
//! reports. That keeps `cargo test`/`cargo bench` fast while still executing
//! every bench path.

use std::fmt;
use std::time::Instant;

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _parent: self }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Criterion {
        run_once(&id.to_string(), &mut f);
        self
    }
}

/// A named group of benchmarks. Configuration methods are accepted and
/// ignored; only execution matters in the shim.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self {
        run_once(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        let started = Instant::now();
        let mut b = Bencher { iterations: 0 };
        f(&mut b, input);
        eprintln!("bench {label}: {:?} (shim, single pass)", started.elapsed());
        self
    }

    pub fn finish(self) {}
}

fn run_once<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let started = Instant::now();
    let mut b = Bencher { iterations: 0 };
    f(&mut b);
    eprintln!("bench {label}: {:?} (shim, single pass)", started.elapsed());
}

/// Declared workload size; informational only in the shim.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Parameterized benchmark id, rendered `function/parameter`.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { function: function.into(), parameter: parameter.to_string() }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { function: String::new(), parameter: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Passed to bench bodies; `iter` runs the routine a single time.
pub struct Bencher {
    iterations: u64,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        self.iterations += 1;
        let _ = black_box(routine());
    }
}

/// Identity function that defeats trivial const-folding of its argument.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Build a `pub fn $name()` that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = { $cfg };
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Build `fn main()` invoking the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(10).throughput(Throughput::Bytes(64));
        g.bench_function("add", |b| b.iter(|| 1u64 + 2));
        g.bench_with_input(BenchmarkId::new("scaled", 8), &8u64, |b, &n| {
            b.iter(|| n * 2);
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_runs_targets_once() {
        benches();
    }

    #[test]
    fn benchmark_id_renders_function_and_parameter() {
        assert_eq!(BenchmarkId::new("f", 42).to_string(), "f/42");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}

//! Offline shim for the subset of `crossbeam` this workspace uses: the
//! multi-producer multi-consumer `channel` module.
//!
//! The real crate cannot be fetched in this container; this implementation
//! is a straightforward `Mutex<VecDeque>` + `Condvar` MPMC queue. It is not
//! lock-free, but the workspace only uses it to fan simulation configs out
//! to a handful of worker threads, where contention is negligible.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<ChannelState<T>>,
        ready: Condvar,
    }

    struct ChannelState<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    /// Error returned by `send` when every receiver is gone. The workspace
    /// never drops receivers before senders, so this is mostly vestigial.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like the real crate, Debug must not require `T: Debug` — callers
    // `.expect()` on send results for arbitrary payload types.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    /// Error returned by `recv` when the channel is empty and every sender
    /// has been dropped.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    pub struct Sender<T>(Arc<Shared<T>>);

    pub struct Receiver<T>(Arc<Shared<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match self.0.queue.lock() {
                Ok(mut st) => st.senders += 1,
                Err(mut poison) => poison.get_mut().senders += 1,
            }
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = match self.0.queue.lock() {
                Ok(g) => g,
                Err(poison) => poison.into_inner(),
            };
            st.senders -= 1;
            if st.senders == 0 {
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, item: T) -> Result<(), SendError<T>> {
            let mut st = match self.0.queue.lock() {
                Ok(g) => g,
                Err(poison) => poison.into_inner(),
            };
            st.items.push_back(item);
            drop(st);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = match self.0.queue.lock() {
                Ok(g) => g,
                Err(poison) => poison.into_inner(),
            };
            loop {
                if let Some(item) = st.items.pop_front() {
                    return Ok(item);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = match self.0.ready.wait(st) {
                    Ok(g) => g,
                    Err(poison) => poison.into_inner(),
                };
            }
        }

        pub fn try_recv(&self) -> Result<T, RecvError> {
            let mut st = match self.0.queue.lock() {
                Ok(g) => g,
                Err(poison) => poison.into_inner(),
            };
            st.items.pop_front().ok_or(RecvError)
        }
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(ChannelState { items: VecDeque::new(), senders: 1 }),
            ready: Condvar::new(),
        });
        (Sender(shared.clone()), Receiver(shared))
    }

    /// Bounded constructor; the shim ignores the capacity bound (the
    /// workspace pre-fills the queue before workers start, so backpressure
    /// is never exercised).
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fan_out_across_cloned_receivers() {
            let (tx, rx) = unbounded::<u32>();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let rx2 = rx.clone();
            let mut got = Vec::new();
            std::thread::scope(|s| {
                let h1 = s.spawn(|| {
                    let mut v = Vec::new();
                    while let Ok(x) = rx.recv() {
                        v.push(x);
                    }
                    v
                });
                let h2 = s.spawn(|| {
                    let mut v = Vec::new();
                    while let Ok(x) = rx2.recv() {
                        v.push(x);
                    }
                    v
                });
                got.extend(h1.join().unwrap());
                got.extend(h2.join().unwrap());
            });
            got.sort_unstable();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn recv_errors_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            let tx2 = tx.clone();
            drop(tx);
            tx2.send(9).unwrap();
            drop(tx2);
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}

//! Offline shim for `serde_json`: parse and print JSON text to/from the
//! serde shim's [`Value`] tree, plus `from_str`/`to_string` entry points
//! matching the real crate's signatures at the call sites this workspace
//! uses.

pub use serde::{Number, Value};
use serde::{DeError, Deserialize, Serialize};
use std::fmt;

/// Parse or conversion error with a byte offset for parse failures.
#[derive(Clone, Debug, PartialEq)]
pub struct Error {
    msg: String,
    offset: Option<usize>,
}

impl Error {
    fn parse(msg: impl Into<String>, offset: usize) -> Error {
        Error { msg: msg.into(), offset: Some(offset) }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(o) => write!(f, "{} at byte {}", self.msg, o),
            None => write!(f, "{}", self.msg),
        }
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error { msg: e.0, offset: None }
    }
}

/// Deserialize `T` from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

/// Serialize `T` to compact JSON.
pub fn to_string<T: Serialize>(t: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&t.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize `T` to indented JSON.
pub fn to_string_pretty<T: Serialize>(t: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&t.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse JSON text into a [`Value`].
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_at(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::parse("trailing characters", pos));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), Error> {
    if *pos < bytes.len() && bytes[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(Error::parse(format!("expected '{}'", ch as char), *pos))
    }
}

fn parse_at(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::parse("unexpected end of input", *pos)),
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_at(bytes, pos)? {
                    Value::Str(s) => s,
                    _ => return Err(Error::parse("object key must be a string", *pos)),
                };
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let val = parse_at(bytes, pos)?;
                entries.push((key, val));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(entries));
                    }
                    _ => return Err(Error::parse("expected ',' or '}'", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_at(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(Error::parse("expected ',' or ']'", *pos)),
                }
            }
        }
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b't') => parse_lit(bytes, pos, b"true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, b"false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, b"null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &[u8], value: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(Error::parse("invalid literal", *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::parse("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| Error::parse("bad \\u escape", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::parse("bad \\u escape", *pos))?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(Error::parse("bad escape", *pos)),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x80 => {
                out.push(b as char);
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8: copy the whole scalar.
                let s = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| Error::parse("invalid utf-8", *pos))?;
                let ch = match s.chars().next() {
                    Some(c) => c,
                    None => return Err(Error::parse("invalid utf-8", *pos)),
                };
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
        *pos += 1;
    }
    let mut float = false;
    if bytes.get(*pos) == Some(&b'.') {
        float = true;
        *pos += 1;
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e') | Some(b'E')) {
        float = true;
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| Error::parse("bad number", start))?;
    if text.is_empty() || text == "-" {
        return Err(Error::parse("bad number", start));
    }
    if !float {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::Num(Number::U(u)));
        }
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Num(Number::I(i)));
        }
    }
    text.parse::<f64>()
        .map(|f| Value::Num(Number::F(f)))
        .map_err(|_| Error::parse("bad number", start))
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(Number::U(u)) => out.push_str(&u.to_string()),
        Value::Num(Number::I(i)) => out.push_str(&i.to_string()),
        Value::Num(Number::F(f)) => {
            if f.fract() == 0.0 && f.is_finite() && f.abs() < 1e15 {
                // Match serde_json's "1.0" rendering for whole floats.
                out.push_str(&format!("{f:.1}"));
            } else {
                out.push_str(&f.to_string());
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Obj(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_objects_and_arrays() {
        let v = parse_value(r#"{"a": [1, 2.5, "x"], "b": {"c": true, "d": null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap(), &Value::Arr(vec![
            Value::Num(Number::U(1)),
            Value::Num(Number::F(2.5)),
            Value::Str("x".into()),
        ]));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Null));
    }

    #[test]
    fn round_trips_compact_text() {
        let v = parse_value(r#"{"x":1,"y":[true,false],"z":"s"}"#).unwrap();
        let mut out = String::new();
        write_value(&v, &mut out, None, 0);
        assert_eq!(out, r#"{"x":1,"y":[true,false],"z":"s"}"#);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("nope").is_err());
        assert!(parse_value("{}extra").is_err());
    }

    #[test]
    fn big_integers_are_exact() {
        let v = parse_value("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn escapes_round_trip() {
        let v = parse_value(r#""line\nquote\"end""#).unwrap();
        assert_eq!(v.as_str(), Some("line\nquote\"end"));
        let mut out = String::new();
        write_value(&v, &mut out, None, 0);
        assert_eq!(out, r#""line\nquote\"end""#);
    }
}
